"""Control-group (cgroup) models used for CPU DoS protection.

The paper restricts the container's access to the CPU along two axes
(Section III-C):

* **cpuset** — the container and all its child processes are pinned to a set
  of CPU cores (one core of the four on the prototype).
* **priority restriction** — Docker denies the container the capability to
  raise its scheduling priority, so under SCHED_FIFO a container process can
  never preempt the HCE's drivers and controllers.

A memory-size cgroup is also modelled; as the paper notes (and the Figure 4
experiment shows), limiting memory *size* does not prevent a memory
*bandwidth* DoS — that requires MemGuard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..rtos.task import TaskConfig

__all__ = ["CpusetCgroup", "CpuCgroup", "MemoryCgroup", "CgroupSet", "CgroupViolation"]


class CgroupViolation(Exception):
    """Raised when a task or allocation request violates its cgroup limits."""


@dataclass(frozen=True)
class CpusetCgroup:
    """cpuset controller: the set of cores the group may run on."""

    allowed_cores: frozenset[int]

    def __post_init__(self) -> None:
        if not self.allowed_cores:
            raise ValueError("cpuset must allow at least one core")
        if any(core < 0 for core in self.allowed_cores):
            raise ValueError("core indices must be non-negative")

    def admit_core(self, requested_core: int) -> int:
        """Return the core the task actually runs on.

        A request for a core outside the cpuset is redirected to the lowest
        allowed core (the kernel would simply never schedule the thread on a
        disallowed core).
        """
        if requested_core in self.allowed_cores:
            return requested_core
        return min(self.allowed_cores)


@dataclass(frozen=True)
class CpuCgroup:
    """CPU controller: caps the SCHED_FIFO priority the group may use."""

    max_priority: int = 10

    def __post_init__(self) -> None:
        if self.max_priority < 0:
            raise ValueError("max_priority must be non-negative")

    def admit_priority(self, requested_priority: int) -> int:
        """Clamp a requested priority to the group's maximum.

        This models Docker's default refusal of ``CAP_SYS_NICE``: a container
        process asking for a high real-time priority silently gets the capped
        value and therefore cannot preempt HCE processes.
        """
        return min(requested_priority, self.max_priority)


@dataclass
class MemoryCgroup:
    """Memory controller: caps the resident memory size of the group."""

    limit_bytes: int = 256 * 1024 * 1024
    used_bytes: int = 0

    def allocate(self, nbytes: int) -> None:
        """Account an allocation; raises :class:`CgroupViolation` over the limit."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.used_bytes + nbytes > self.limit_bytes:
            raise CgroupViolation(
                f"allocation of {nbytes} bytes exceeds cgroup limit "
                f"({self.used_bytes}/{self.limit_bytes} bytes used)"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: int) -> None:
        """Release previously accounted memory."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.used_bytes = max(0, self.used_bytes - nbytes)


@dataclass
class CgroupSet:
    """The cgroup hierarchy applied to one container."""

    cpuset: CpusetCgroup
    cpu: CpuCgroup = field(default_factory=CpuCgroup)
    memory: MemoryCgroup = field(default_factory=MemoryCgroup)

    def admit_task(self, config: TaskConfig) -> TaskConfig:
        """Return a copy of ``config`` adjusted to respect the cgroup limits."""
        core = self.cpuset.admit_core(config.core)
        priority = self.cpu.admit_priority(config.priority)
        if core == config.core and priority == config.priority:
            return config
        return TaskConfig(
            name=config.name,
            period=config.period,
            execution_time=config.execution_time,
            priority=priority,
            core=core,
            memory_stall_fraction=config.memory_stall_fraction,
            accesses_per_job=config.accesses_per_job,
            offset=config.offset,
            skip_if_pending=config.skip_if_pending,
        )

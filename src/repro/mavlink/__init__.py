"""MAVLink-like messaging substrate used between the HCE and the CCE."""

from .codec import DecodeError, Frame, MavlinkCodec, crc16
from .connection import MOTOR_PORT, SENSOR_PORT, MavlinkConnection
from .messages import (
    MESSAGE_REGISTRY,
    ActuatorOutputs,
    AttitudeTarget,
    GpsRawInt,
    Heartbeat,
    HighresImu,
    LocalPositionNed,
    MavlinkMessage,
    RcChannelsOverride,
    ScaledPressure,
    message_class_for_id,
)
from .router import MessageRouter

__all__ = [
    "ActuatorOutputs",
    "AttitudeTarget",
    "DecodeError",
    "Frame",
    "GpsRawInt",
    "Heartbeat",
    "HighresImu",
    "LocalPositionNed",
    "MESSAGE_REGISTRY",
    "MOTOR_PORT",
    "MavlinkCodec",
    "MavlinkConnection",
    "MavlinkMessage",
    "MessageRouter",
    "RcChannelsOverride",
    "SENSOR_PORT",
    "ScaledPressure",
    "crc16",
    "message_class_for_id",
]

"""CPU DoS attack: a spin loop requesting the highest real-time priority.

The attacker tries to monopolise the CPU by running busy loops at SCHED_FIFO
priority 99.  The framework's CPU protection (cpuset pinning plus Docker's
refusal to let the container raise its priority) confines the damage to the
container's own core; the ablation bench ``test_ablation_cpuset`` quantifies
what happens without that protection.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtos.task import TaskConfig
from .base import Attack

__all__ = ["CpuHogAttack"]


@dataclass(frozen=True)
class CpuHogAttack(Attack):
    """Busy-loop CPU hog.

    Attributes
    ----------
    threads:
        Number of hog threads the attacker spawns (one per core it hopes to
        occupy).
    priority:
        Requested SCHED_FIFO priority (capped by the container cgroup unless
        the protection is disabled).
    """

    threads: int = 4
    priority: int = 99

    #: Wall-clock length of each never-ending hog job [s].
    _JOB_LENGTH = 1.0e6

    def task_configs(self, first_core: int, num_cores: int, quantum: float = 0.001) -> list[TaskConfig]:
        """Build one task per hog thread, spread over the requested cores.

        Each hog is a SCHED_FIFO busy loop: a single job that never finishes,
        so it monopolises whatever CPU share its (possibly cgroup-capped)
        priority entitles it to.
        """
        configs = []
        for thread in range(self.threads):
            core = (first_core + thread) % num_cores
            configs.append(
                TaskConfig(
                    name=f"cpu-hog-{thread}",
                    period=2.0 * self._JOB_LENGTH,
                    execution_time=self._JOB_LENGTH,
                    priority=self.priority,
                    core=core,
                    memory_stall_fraction=0.02,
                    accesses_per_job=int(50_000 * self._JOB_LENGTH),
                    offset=self.start_time,
                    skip_if_pending=True,
                )
            )
        return configs

"""Container and VM substrate: cgroups, Docker-like runtime, QEMU-like VM."""

from .cgroups import CgroupSet, CgroupViolation, CpuCgroup, CpusetCgroup, MemoryCgroup
from .container import Container, ContainerConfig, ContainerState, PortMapping
from .runtime import ContainerRuntime, RuntimeConfig
from .vm import VirtualMachine, VmConfig

__all__ = [
    "CgroupSet",
    "CgroupViolation",
    "Container",
    "ContainerConfig",
    "ContainerRuntime",
    "ContainerState",
    "CpuCgroup",
    "CpusetCgroup",
    "MemoryCgroup",
    "PortMapping",
    "RuntimeConfig",
    "VirtualMachine",
    "VmConfig",
]

"""Rendering helpers shared by the figure benchmarks."""

from __future__ import annotations


def render_figure(result, attack_label: str) -> str:
    """Render a Figure 4-7 style report: three-axis plots plus flight metrics."""
    from repro.analysis import ascii_plot, extract_axes

    lines = [f"scenario: {result.scenario.name}", f"attack: {attack_label}",
             f"metrics: {result.metrics.summary()}"]
    if result.violations:
        first = result.violations[0]
        lines.append(f"first violation: {first.rule} at t={first.time:.2f} s ({first.message})")
    else:
        lines.append("first violation: none")
    for axis in extract_axes(result.recorder):
        lines.append("")
        lines.append(ascii_plot(axis))
    return "\n".join(lines)

"""The complex controller: a PX4-like cascaded autopilot.

This is the controller running inside the Container Control Environment
(CCE).  It operates in the paper's *simulation control mode*: it never touches
device files, all sensor data arrives as messages forwarded by the HCE feeder
threads, and its only output is a stream of actuator (motor) commands sent
back to the HCE over UDP.

The control structure is the standard PX4 multicopter cascade:

    position P → velocity PID → attitude P → rate PID → allocator

Estimation is performed locally (complementary attitude filter plus a
constant-velocity position Kalman filter) from the forwarded IMU, barometer,
GPS and motion-capture data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..estimation.attitude import ComplementaryFilter
from ..estimation.position import PositionEstimator
from ..sensors.barometer import BarometerReading
from ..sensors.imu import ImuReading
from ..sensors.mocap import MocapReading
from ..sensors.rc import RcChannels
from .allocator import QuadXAllocator
from .attitude_control import AttitudeControlGains, AttitudeController
from .modes import FlightMode, mode_from_rc
from .position_control import PositionControlGains, PositionController
from .rate_control import RateControlGains, RateController
from .setpoints import ActuatorCommand, AttitudeSetpoint, PositionSetpoint

__all__ = ["ComplexControllerConfig", "ComplexController"]


@dataclass
class ComplexControllerConfig:
    """Configuration of the complex controller."""

    position_gains: PositionControlGains = field(default_factory=PositionControlGains)
    attitude_gains: AttitudeControlGains = field(default_factory=AttitudeControlGains)
    rate_gains: RateControlGains = field(default_factory=RateControlGains)
    #: Nominal execution time of one control iteration on the CCE core [s].
    nominal_execution_time: float = 0.0012
    #: Fraction of the execution time stalled on memory under no contention.
    memory_stall_fraction: float = 0.35
    #: DRAM accesses issued per control iteration (used by MemGuard accounting).
    memory_accesses_per_iteration: int = 6000


class ComplexController:
    """Full-featured cascaded flight controller (runs in the CCE)."""

    def __init__(self, config: ComplexControllerConfig | None = None) -> None:
        self.config = config or ComplexControllerConfig()
        self._attitude_filter = ComplementaryFilter()
        self._position_estimator = PositionEstimator()
        self._position_controller = PositionController(self.config.position_gains)
        self._attitude_controller = AttitudeController(self.config.attitude_gains)
        self._rate_controller = RateController(self.config.rate_gains)
        self._allocator = QuadXAllocator()
        self._setpoint = PositionSetpoint.hover_at(0.0, 0.0, 1.0)
        self._mode = FlightMode.POSITION
        self._last_imu_time: float | None = None
        self._last_compute_time: float | None = None
        self._sequence = 0
        self._alive = True

    # -- lifecycle --------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False after the controller process has been killed (Fig. 6 attack)."""
        return self._alive

    def kill(self) -> None:
        """Terminate the controller; it produces no further output."""
        self._alive = False

    # -- configuration ----------------------------------------------------------

    @property
    def mode(self) -> FlightMode:
        """Currently selected flight mode."""
        return self._mode

    @property
    def setpoint(self) -> PositionSetpoint:
        """Current position setpoint."""
        return self._setpoint

    @property
    def attitude_estimate(self):
        """Current attitude estimate."""
        return self._attitude_filter.estimate

    @property
    def position_estimate(self):
        """Current position/velocity estimate."""
        return self._position_estimator.estimate

    def set_position_setpoint(self, setpoint: PositionSetpoint) -> None:
        """Set the 3D position setpoint used in position mode."""
        self._setpoint = setpoint

    # -- sensor inputs (arrive as forwarded messages) ----------------------------

    def on_imu(self, reading: ImuReading, timestamp: float) -> None:
        """Consume one forwarded IMU sample."""
        if not self._alive:
            return
        if self._last_imu_time is None:
            dt = 1.0 / 250.0
        else:
            dt = max(timestamp - self._last_imu_time, 1e-4)
        self._last_imu_time = timestamp
        self._attitude_filter.update(reading, dt)
        self._position_estimator.predict(dt)

    def on_baro(self, reading: BarometerReading, timestamp: float) -> None:
        """Consume one forwarded barometer sample."""
        if not self._alive:
            return
        self._position_estimator.update_baro_altitude(reading.altitude_m)

    def on_gps(self, position_ned: np.ndarray, timestamp: float) -> None:
        """Consume one forwarded GPS-derived local position fix."""
        if not self._alive:
            return
        self._position_estimator.update_gps(position_ned)

    def on_mocap(self, reading: MocapReading, timestamp: float) -> None:
        """Consume one forwarded motion-capture fix."""
        if not self._alive:
            return
        if reading.valid:
            self._position_estimator.update_mocap(reading.position_ned)
            self._attitude_filter.set_yaw(reading.yaw)

    def on_rc(self, channels: RcChannels, timestamp: float) -> None:
        """Consume one forwarded RC frame (selects the flight mode)."""
        if not self._alive:
            return
        self._mode = mode_from_rc(channels)

    # -- control ----------------------------------------------------------------

    def compute(self, timestamp: float) -> ActuatorCommand | None:
        """Run one control iteration and return the actuator command.

        Returns ``None`` when the controller has been killed.
        """
        if not self._alive:
            return None
        if self._last_compute_time is None:
            dt = 1.0 / 250.0
        else:
            dt = max(timestamp - self._last_compute_time, 1e-4)
        self._last_compute_time = timestamp

        attitude = self._attitude_filter.estimate
        position = self._position_estimator.estimate

        if self._mode is FlightMode.POSITION and position.valid:
            attitude_setpoint = self._position_controller.update(
                self._setpoint, position.position, position.velocity, attitude.yaw, dt
            )
        else:
            # Manual / stabilised: hold level attitude at hover thrust, which
            # matches the neutral-stick scripted pilot used in the scenarios.
            attitude_setpoint = AttitudeSetpoint(
                roll=0.0,
                pitch=0.0,
                yaw=attitude.yaw,
                thrust=self.config.position_gains.hover_thrust,
            )

        rate_setpoint = self._attitude_controller.update(
            attitude_setpoint, attitude.roll, attitude.pitch, attitude.yaw
        )
        allocation = self._rate_controller.update(rate_setpoint, attitude.rates, dt)
        motors = self._allocator.allocate(allocation)

        self._sequence += 1
        return ActuatorCommand(
            motors=motors, timestamp=timestamp, source="complex", sequence=self._sequence
        )

"""State estimation used by both control environments."""

from .attitude import AttitudeEstimate, ComplementaryFilter
from .position import PositionEstimate, PositionEstimator

__all__ = [
    "AttitudeEstimate",
    "ComplementaryFilter",
    "PositionEstimate",
    "PositionEstimator",
]

"""Memory subsystem substrate: shared DRAM model, counters and MemGuard."""

from .dram import DramModel, DramParameters
from .memguard import MemGuard, MemGuardConfig
from .perf_counter import CounterBank, PerformanceCounter

__all__ = [
    "CounterBank",
    "DramModel",
    "DramParameters",
    "MemGuard",
    "MemGuardConfig",
    "PerformanceCounter",
]

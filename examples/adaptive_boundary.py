#!/usr/bin/env python3
"""Adaptive crash-boundary search: where does the MemGuard budget fail?

The Figure 4 vs Figure 5 comparison shows the two extremes of the memory-DoS
experiment (no MemGuard: crash; default budget: survive).  This example
localizes the *transition*: the CCE budget above which the Bandwidth
attacker gets enough DRAM bandwidth to push the drone out of its geofence.
Instead of a dense budget sweep it runs bracketing + bisection through the
campaign engine (``repro.adaptive``), optionally caching every probe flight
in a content-addressed result store so re-runs are free.

Usage::

    python examples/adaptive_boundary.py [--duration SECONDS]
        [--attack-start SECONDS] [--geofence METERS]
        [--lo BUDGET] [--hi BUDGET] [--tolerance-mbps MBPS]
        [--batch N] [--store DIR] [--serial] [--json PATH]
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

from repro import BoundarySearch, CampaignRunner, CampaignStore, FlightScenario
from repro.adaptive import BoundaryBracketError, crashed

#: One MemGuard budget unit is one 64-byte DRAM access per 1 ms period.
MBPS_PER_BUDGET_UNIT = 64e3 / 1e6


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument("--attack-start", type=float, default=1.0)
    parser.add_argument("--geofence", type=float, default=2.0,
                        help="geofence radius [m] (the crash threshold)")
    parser.add_argument("--lo", type=int, default=2000,
                        help="low budget endpoint [accesses/period]")
    parser.add_argument("--hi", type=int, default=32000,
                        help="high budget endpoint [accesses/period]")
    parser.add_argument("--tolerance-mbps", type=float, default=50.0,
                        help="boundary localization tolerance [MB/s]")
    parser.add_argument("--batch", type=int, default=3,
                        help="probes per refinement round (pool saturation)")
    parser.add_argument("--store", type=str, default=None,
                        help="cache probe flights in this result-store directory")
    parser.add_argument("--serial", action="store_true",
                        help="force serial execution (default: process pool)")
    parser.add_argument("--json", type=str, default=None,
                        help="write the boundary result JSON to this file")
    args = parser.parse_args()

    scenario = FlightScenario.figure5(
        attack_start=args.attack_start, duration=args.duration
    )
    scenario = replace(scenario, geofence_radius=args.geofence).with_name(
        "memguard-boundary"
    )
    tolerance = max(1, int(args.tolerance_mbps / MBPS_PER_BUDGET_UNIT))
    search = BoundarySearch(
        scenario=scenario,
        axis="memguard_budget",
        lo=args.lo,
        hi=args.hi,
        tolerance=tolerance,
        predicate=crashed,
        batch=args.batch,
    )
    runner = CampaignRunner(
        mode="serial" if args.serial else "auto",
        store=CampaignStore(args.store) if args.store else None,
    )

    print(f"Bisecting the MemGuard crash boundary in [{args.lo}, {args.hi}] "
          f"accesses/period (tolerance {tolerance} = "
          f"{args.tolerance_mbps:g} MB/s, batch {args.batch}) — the dense "
          f"equivalent would fly {search.dense_grid_size()} flights")
    try:
        result = search.run(runner)
    except BoundaryBracketError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print()
    print(result.to_text())
    print()
    print(f"Boundary estimate: {result.boundary:.0f} accesses/period "
          f"({result.boundary * MBPS_PER_BUDGET_UNIT:.0f} MB/s), "
          f"bracket width {result.width:.0f} "
          f"({result.width * MBPS_PER_BUDGET_UNIT:.1f} MB/s)")
    print(f"Flights: {result.flights} flown"
          + (f" + {result.cache_hits} cached" if result.cache_hits else "")
          + f" vs {search.dense_grid_size()} dense; "
          f"wall time {result.wall_time:.1f} s")
    if args.json:
        result.to_json(args.json)
        print(f"Wrote boundary JSON to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

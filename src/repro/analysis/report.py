"""Text rendering of the reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers format them consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.metrics import FlightMetrics

__all__ = ["format_table", "format_figure_summary", "format_overhead_table"]


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_overhead_table(results: dict[str, list[float]]) -> str:
    """Render the Table II style idle-rate comparison."""
    headers = ["Case"] + [f"CPU{core}" for core in range(len(next(iter(results.values()))))]
    rows = [
        [case] + [f"{rate:.2f}" for rate in rates]
        for case, rates in results.items()
    ]
    return format_table(headers, rows, title="System overhead comparison (CPU idle rates)")


def format_figure_summary(name: str, metrics: FlightMetrics, expectation: str) -> str:
    """One-paragraph summary comparing a reproduced figure to the paper's claim."""
    return (
        f"{name}: {metrics.summary()}\n"
        f"  paper expectation: {expectation}"
    )

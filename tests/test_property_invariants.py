"""Cross-module property-based tests on core invariants.

These complement the per-module unit tests: they assert relationships that
must hold for *any* admissible input — conservation of CPU time in the
scheduler, MemGuard's bandwidth guarantee, consistency between the control
allocator and the physical mixer, and the latching behaviour of the Simplex
decision module.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.container import Container, ContainerConfig
from repro.control import ActuatorCommand, ControlAllocation, QuadXAllocator
from repro.core import DecisionModule
from repro.dynamics import QuadGeometry, forces_and_torques
from repro.memsys import MemGuard, MemGuardConfig
from repro.rtos import MulticoreScheduler, Task, TaskConfig


class TestSchedulerInvariants:
    @given(
        executions=st.lists(st.floats(min_value=0.0001, max_value=0.003), min_size=1, max_size=4),
        priorities=st.lists(st.integers(min_value=1, max_value=99), min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_time_never_exceeds_elapsed_time(self, executions, priorities):
        scheduler = MulticoreScheduler(num_cores=1)
        for index, execution in enumerate(executions):
            scheduler.add_task(Task(TaskConfig(
                name=f"task-{index}",
                period=0.005,
                execution_time=execution,
                priority=priorities[index % len(priorities)],
                core=0,
            )))
        scheduler.advance(0.25)
        core = scheduler.cores[0]
        assert core.busy_time <= core.elapsed_time + 1e-9
        assert 0.0 <= core.idle_rate <= 1.0

    @given(utilization=st.floats(min_value=0.05, max_value=0.85))
    @settings(max_examples=20, deadline=None)
    def test_measured_utilization_tracks_nominal_when_feasible(self, utilization):
        scheduler = MulticoreScheduler(num_cores=1)
        scheduler.add_task(Task(TaskConfig(
            name="load", period=0.01, execution_time=utilization * 0.01, priority=10, core=0,
        )))
        scheduler.advance(1.0)
        assert scheduler.utilizations()[0] == pytest.approx(utilization, abs=0.05)

    @given(executions=st.lists(st.floats(min_value=0.0005, max_value=0.02), min_size=2, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_completions_never_exceed_releases(self, executions):
        scheduler = MulticoreScheduler(num_cores=2)
        tasks = []
        for index, execution in enumerate(executions):
            task = Task(TaskConfig(
                name=f"task-{index}", period=0.004, execution_time=execution,
                priority=10 + index, core=index % 2,
            ))
            tasks.append(scheduler.add_task(task))
        scheduler.advance(0.3)
        for task in tasks:
            assert task.stats.completed <= task.stats.released
            assert task.stats.released + task.stats.skipped_releases >= task.stats.completed


class TestMemGuardInvariant:
    @given(
        budget=st.integers(min_value=100, max_value=5000),
        demand=st.integers(min_value=1000, max_value=100000),
    )
    @settings(max_examples=30, deadline=None)
    def test_regulated_core_never_exceeds_budget_per_period(self, budget, demand):
        memguard = MemGuard(2, MemGuardConfig(period=0.001, budgets={1: budget}))
        scheduler = MulticoreScheduler(num_cores=2, memguard=memguard)
        scheduler.add_task(Task(TaskConfig(
            name="attacker", period=2.0, execution_time=1.0, priority=10, core=1,
            memory_stall_fraction=0.9, accesses_per_job=demand * 1000,
        )))
        periods = 50
        for _ in range(periods):
            scheduler.advance(0.001)
        total = memguard.counters[1].total
        # Per-period accesses are capped by the budget (a small overshoot of a
        # single quantum's rounding is tolerated).
        assert total <= budget * (periods + 1)


class TestAllocatorMixerConsistency:
    @given(
        thrust=st.floats(min_value=0.2, max_value=0.8),
        roll=st.floats(min_value=-0.15, max_value=0.15),
        pitch=st.floats(min_value=-0.15, max_value=0.15),
        yaw=st.floats(min_value=-0.15, max_value=0.15),
    )
    @settings(max_examples=100, deadline=None)
    def test_unsaturated_demands_produce_matching_physical_torques(self, thrust, roll, pitch, yaw):
        """A positive normalised demand must map to a positive physical torque."""
        from hypothesis import assume

        # Only consider demands the allocator can satisfy without hitting the
        # [0, 1] motor limits (saturation intentionally sacrifices yaw).
        assume(abs(roll) + abs(pitch) + abs(yaw) < min(thrust, 1.0 - thrust))
        allocator = QuadXAllocator()
        motors = allocator.allocate(ControlAllocation(thrust, roll, pitch, yaw))
        # Use motor command directly as a thrust surrogate (monotone mapping),
        # with reaction torque proportional to thrust.
        _, torque = forces_and_torques(motors, 0.02 * motors, QuadGeometry())
        for demand, axis in ((roll, 0), (pitch, 1), (yaw, 2)):
            if abs(demand) > 0.02:
                assert np.sign(torque[axis]) == np.sign(demand)


class TestDecisionModuleInvariant:
    @given(events=st.lists(st.sampled_from(["complex", "safety", "switch"]), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_no_complex_command_selected_after_switch(self, events):
        decision = DecisionModule()
        switched = False
        for index, event in enumerate(events):
            now = float(index)
            if event == "complex":
                decision.submit_complex(
                    ActuatorCommand(motors=np.full(4, 0.4), source="complex"), received_at=now
                )
            elif event == "safety":
                decision.submit_safety(ActuatorCommand(motors=np.full(4, 0.6), source="safety"))
            else:
                decision.switch_to_safety(now, "test")
                switched = True
            selected = decision.select()
            if switched and selected is not None:
                assert selected.source == "safety"


class TestCgroupInvariant:
    @given(priority=st.integers(min_value=0, max_value=99), core=st.integers(min_value=0, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_unprivileged_container_never_escapes_its_limits(self, priority, core):
        container = Container(ContainerConfig())
        admitted = container.admit_task(TaskConfig(
            name="proc", period=0.01, execution_time=0.001, priority=priority, core=core,
        ))
        assert admitted.core in ContainerConfig().cpuset_cores
        assert admitted.priority <= ContainerConfig().max_priority

"""Declarative campaign specs: JSON/TOML files describing a grid or search.

A spec file makes a campaign runnable without writing a script (see
``python -m repro.campaign``).  It has up to four tables:

``[scenario]``
    Base scenario.  ``figure`` picks a canonical constructor (``baseline``,
    ``figure4`` ... ``figure7``); remaining keys are constructor arguments
    (e.g. ``attack_start``) or direct ``FlightScenario`` field overrides
    (``duration``, ``seed``, ``record_hz``, ``geofence_radius``, ...).

``[axes]``
    Grid sweep: axis name -> list of values (any axis a
    :class:`~repro.campaign.grid.ScenarioGrid` accepts, including
    ``attack.<param>``).  Mutually exclusive with ``[adaptive]``.

``[adaptive]``
    Boundary search: ``axis``, ``lo``, ``hi``, ``tolerance``, and optionally
    ``predicate`` (a :func:`repro.adaptive.resolve_predicate` name, default
    ``crashed``), ``batch`` and ``integral``.

``[runner]``
    Execution policy: ``mode``/``max_workers`` or an explicit ``backend``
    registry name (plus ``backend_options``), and an optional ``store``
    directory for cached results.

Example (TOML)::

    [scenario]
    figure = "figure5"
    duration = 12.0

    [axes]
    memguard_budget = [1000, 3000]
    seed = [0, 1, 2]

    [runner]
    store = ".campaign-store"
"""

from __future__ import annotations

import dataclasses
import inspect
import json
from pathlib import Path
from typing import Any, Mapping

from ..sim.scenario import FlightScenario
from .backends import get_backend
from .grid import ScenarioGrid
from .runner import CampaignRunner

__all__ = [
    "build_grid",
    "build_runner",
    "build_scenario",
    "build_search",
    "load_spec",
]

_CONSTRUCTORS = {
    "baseline": FlightScenario.baseline,
    "figure4": FlightScenario.figure4,
    "figure5": FlightScenario.figure5,
    "figure6": FlightScenario.figure6,
    "figure7": FlightScenario.figure7,
}

_SCENARIO_FIELDS = {spec.name for spec in dataclasses.fields(FlightScenario)}


def load_spec(path: str | Path) -> dict[str, Any]:
    """Load a campaign spec from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        import tomllib

        with open(path, "rb") as handle:
            spec = tomllib.load(handle)
    else:
        spec = json.loads(path.read_text())
    if not isinstance(spec, Mapping):
        raise ValueError(f"spec {path} must contain a table/object at top level")
    has_axes = "axes" in spec
    has_adaptive = "adaptive" in spec
    if has_axes == has_adaptive:
        raise ValueError(
            "spec must contain exactly one of 'axes' (grid sweep) or "
            "'adaptive' (boundary search)"
        )
    return dict(spec)


def build_scenario(section: Mapping[str, Any] | None) -> FlightScenario:
    """Build the base scenario of a spec's ``[scenario]`` table."""
    options = dict(section or {})
    kind = options.pop("figure", None)
    if kind is None:
        constructor: Any = FlightScenario
    else:
        try:
            constructor = _CONSTRUCTORS[kind]
        except KeyError:
            raise ValueError(
                f"unknown scenario figure {kind!r} "
                f"(available: {sorted(_CONSTRUCTORS)})"
            ) from None
    parameters = inspect.signature(constructor).parameters
    constructor_kwargs = {
        name: options.pop(name) for name in list(options) if name in parameters
    }
    scenario = constructor(**constructor_kwargs)

    unknown = set(options) - _SCENARIO_FIELDS
    if unknown:
        raise ValueError(
            f"unknown scenario option(s) {sorted(unknown)}; valid keys are "
            f"'figure', constructor arguments and FlightScenario fields "
            f"({sorted(_SCENARIO_FIELDS)})"
        )
    if "seed" in options:
        options["seed"] = int(options["seed"])
    if options:
        scenario = dataclasses.replace(scenario, **options)
    return scenario


def build_grid(spec: Mapping[str, Any]) -> ScenarioGrid:
    """Build the sweep grid of a grid spec."""
    axes = spec.get("axes")
    if not isinstance(axes, Mapping) or not axes:
        raise ValueError("grid spec needs a non-empty 'axes' table")
    return ScenarioGrid(build_scenario(spec.get("scenario")), axes=axes)


def build_search(spec: Mapping[str, Any]) -> "Any":
    """Build the boundary search of an adaptive spec."""
    from ..adaptive import BoundarySearch, resolve_predicate

    section = spec.get("adaptive")
    if not isinstance(section, Mapping):
        raise ValueError("adaptive spec needs an 'adaptive' table")
    options = dict(section)
    try:
        axis = options.pop("axis")
        lo = float(options.pop("lo"))
        hi = float(options.pop("hi"))
        tolerance = float(options.pop("tolerance"))
    except KeyError as exc:
        raise ValueError(f"adaptive spec is missing {exc.args[0]!r}") from None
    predicate = resolve_predicate(options.pop("predicate", "crashed"))
    batch = int(options.pop("batch", 1))
    integral = options.pop("integral", None)
    if options:
        raise ValueError(f"unknown adaptive option(s) {sorted(options)}")
    return BoundarySearch(
        scenario=build_scenario(spec.get("scenario")),
        axis=axis,
        lo=lo,
        hi=hi,
        tolerance=tolerance,
        predicate=predicate,
        batch=batch,
        integral=None if integral is None else bool(integral),
    )


def build_runner(
    spec: Mapping[str, Any],
    store_dir: str | Path | None = None,
    mode: str | None = None,
    max_workers: int | None = None,
) -> CampaignRunner:
    """Build the runner of a spec's ``[runner]`` table.

    ``store_dir``/``mode``/``max_workers`` are command-line overrides that
    win over the spec — including over an explicit ``backend``: an explicit
    backend would be used unconditionally by the runner, so when the command
    line forces an execution policy the spec's backend is dropped in favour
    of the built-in ``mode``/``max_workers`` selection.
    """
    section = dict(spec.get("runner") or {})
    backend = None
    backend_name = section.pop("backend", None)
    backend_options = section.pop("backend_options", {})
    if backend_name is None and backend_options:
        raise ValueError(
            "runner option 'backend_options' requires a 'backend' name"
        )
    if backend_name is not None and mode is None and max_workers is None:
        backend = get_backend(backend_name, **backend_options)
    store = None
    store_path = store_dir if store_dir is not None else section.pop("store", None)
    section.pop("store", None)
    if store_path is not None:
        from ..store import CampaignStore

        salt = section.pop("salt", None)
        store = (
            CampaignStore(Path(store_path))
            if salt is None
            else CampaignStore(Path(store_path), salt=salt)
        )
    runner_mode = mode if mode is not None else section.pop("mode", "auto")
    workers = max_workers if max_workers is not None else section.pop("max_workers", None)
    section.pop("mode", None)
    section.pop("max_workers", None)
    if section:
        raise ValueError(f"unknown runner option(s) {sorted(section)}")
    return CampaignRunner(
        max_workers=workers, mode=runner_mode, backend=backend, store=store
    )

"""Complementary attitude filter.

Both controllers (the complex controller in the container and the safety
controller on the host) estimate attitude from the same forwarded IMU stream.
A complementary filter fuses integrated gyro rates with the gravity direction
observed by the accelerometer, which is the standard light-weight approach for
small autopilots and is sufficient for the paper's hover experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dynamics.state import (
    angle_wrap,
    quat_from_euler,
    quat_multiply,
    quat_normalize,
    quat_to_euler,
)
from ..sensors.imu import ImuReading

__all__ = ["AttitudeEstimate", "ComplementaryFilter"]


@dataclass(frozen=True)
class AttitudeEstimate:
    """Attitude estimate with body rates."""

    quaternion: np.ndarray
    roll: float
    pitch: float
    yaw: float
    rates: np.ndarray


class ComplementaryFilter:
    """Gyro-integration attitude filter with accelerometer tilt correction."""

    def __init__(self, accel_gain: float = 0.002, initial_yaw: float = 0.0) -> None:
        if not 0.0 <= accel_gain <= 1.0:
            raise ValueError("accel_gain must be within [0, 1]")
        self.accel_gain = float(accel_gain)
        self._quaternion = quat_from_euler(0.0, 0.0, initial_yaw)
        self._rates = np.zeros(3)
        self._initialized = False

    @property
    def estimate(self) -> AttitudeEstimate:
        """Current attitude estimate."""
        roll, pitch, yaw = quat_to_euler(self._quaternion)
        return AttitudeEstimate(
            quaternion=self._quaternion.copy(),
            roll=roll,
            pitch=pitch,
            yaw=yaw,
            rates=self._rates.copy(),
        )

    def set_yaw(self, yaw: float) -> None:
        """Reset the yaw component (e.g. when motion-capture yaw arrives)."""
        roll, pitch, _ = quat_to_euler(self._quaternion)
        self._quaternion = quat_from_euler(roll, pitch, angle_wrap(yaw))

    def update(self, imu: ImuReading, dt: float) -> AttitudeEstimate:
        """Fuse one IMU reading taken ``dt`` seconds after the previous one."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        gyro = np.asarray(imu.gyro, dtype=float)
        accel = np.asarray(imu.accel, dtype=float)
        self._rates = gyro

        # Propagate attitude with the gyro rates.
        delta = np.concatenate(([1.0], 0.5 * gyro * dt))
        self._quaternion = quat_normalize(quat_multiply(self._quaternion, delta))

        # Tilt correction from the accelerometer when it is observing roughly
        # one gravity of specific force (i.e. not in aggressive manoeuvres).
        accel_norm = np.linalg.norm(accel)
        if 0.5 * 9.80665 < accel_norm < 1.5 * 9.80665:
            accel_unit = accel / accel_norm
            accel_roll = np.arctan2(-accel_unit[1], -accel_unit[2])
            accel_pitch = np.arctan2(accel_unit[0], np.sqrt(accel_unit[1] ** 2 + accel_unit[2] ** 2))
            roll, pitch, yaw = quat_to_euler(self._quaternion)
            if not self._initialized:
                roll, pitch = accel_roll, accel_pitch
                self._initialized = True
            else:
                roll += self.accel_gain * angle_wrap(accel_roll - roll)
                pitch += self.accel_gain * angle_wrap(accel_pitch - pitch)
            self._quaternion = quat_from_euler(roll, pitch, yaw)

        return self.estimate

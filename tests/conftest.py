"""Shared pytest fixtures.

The package is normally installed with ``pip install -e .``; the sys.path
fallback below lets the suite run straight from a source checkout as well.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def hover_state():
    """Rigid-body state hovering 1 m above the origin."""
    from repro.dynamics import RigidBodyState

    return RigidBodyState(position=np.array([0.0, 0.0, -1.0]))

"""Ablation A2 — MemGuard budget sweep.

The paper sets the CCE budget "to a value that allows the complex controller
to run without problem" but does not explore the trade-off.  This ablation
sweeps the budget under the Figure 4/5 memory attack and shows the transition
from fully protected flight, through bounded oscillation, to the unprotected
crash — the quantitative version of the Figure 4 vs Figure 5 comparison.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis import format_table
from repro.sim import FlightScenario, run_scenario

ATTACK_START = 10.0
DURATION = 30.0

#: Budgets in DRAM accesses per 1 ms MemGuard period; None = MemGuard disabled.
BUDGETS = [2000, 3000, 4000, None]


def run_sweep():
    results = {}
    for budget in BUDGETS:
        scenario = FlightScenario.figure5(attack_start=ATTACK_START, duration=DURATION)
        if budget is None:
            scenario = FlightScenario.figure4(attack_start=ATTACK_START, duration=DURATION)
            label = "MemGuard off"
        else:
            config = scenario.config
            config = replace(config, memory=replace(config.memory,
                                                    cce_budget_accesses_per_period=budget))
            scenario = scenario.with_config(config).with_name(f"fig5-budget-{budget}")
            label = f"{budget} accesses/period"
        results[label] = run_scenario(scenario)
    return results


def test_ablation_memguard_budget(benchmark, report):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for label, result in results.items():
        metrics = result.metrics
        rows.append([
            label,
            "yes" if result.crashed else "no",
            f"{metrics.rms_error_after:.3f} m",
            f"{metrics.max_deviation_after:.2f} m",
        ])
    report("ablation_memguard_budget", format_table(
        ["CCE budget", "Crashed", "RMS error after attack", "Max deviation after attack"],
        rows,
        title="Ablation A2 — MemGuard budget sweep under the Bandwidth attack",
    ))

    tight = results["2000 accesses/period"]
    default = results["3000 accesses/period"]
    loose = results["4000 accesses/period"]
    disabled = results["MemGuard off"]

    # Regulated flights survive; the unregulated one crashes (Figure 4).
    assert not tight.crashed and not default.crashed and not loose.crashed
    assert disabled.crashed
    # Tight and default budgets keep the tracking error small; relaxing the
    # budget can only make the degradation worse (within a small tolerance).
    assert tight.metrics.max_deviation_after < 0.5
    assert default.metrics.max_deviation_after < 0.5
    assert loose.metrics.max_deviation_after >= default.metrics.max_deviation_after - 0.05

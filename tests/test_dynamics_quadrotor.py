"""Tests for the 6-DOF quadrotor plant."""

import numpy as np
import pytest

from repro.dynamics import (
    Environment,
    GustWind,
    Quadrotor,
    QuadrotorParameters,
    RigidBodyState,
)


def hover_throttle(params: QuadrotorParameters) -> float:
    """Throttle that balances gravity for the given parameters."""
    weight = params.mass * 9.80665
    per_motor = weight / 4.0
    speed = np.sqrt(per_motor / params.motor.thrust_coefficient)
    return (speed - params.motor.min_speed) / (params.motor.max_speed - params.motor.min_speed)


@pytest.fixture
def airborne_quad():
    quad = Quadrotor(initial_state=RigidBodyState(position=np.array([0.0, 0.0, -5.0])))
    quad.arm()
    return quad


class TestQuadrotorBasics:
    def test_invalid_integrator_rejected(self):
        with pytest.raises(ValueError):
            Quadrotor(integrator="rk7")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QuadrotorParameters(mass=-1.0)
        with pytest.raises(ValueError):
            QuadrotorParameters(inertia=np.zeros((3, 3)))

    def test_step_rejects_nonpositive_dt(self, airborne_quad):
        with pytest.raises(ValueError):
            airborne_quad.step(np.full(4, 0.5), 0.0)

    def test_hover_fraction_is_reasonable(self):
        params = QuadrotorParameters()
        assert 0.2 < params.hover_thrust_fraction < 0.7


class TestFreeFallAndHover:
    def test_zero_throttle_free_fall(self, airborne_quad):
        for _ in range(500):
            airborne_quad.step(np.zeros(4), 0.001)
        # After 0.5 s of free fall the vehicle should have dropped ~1.2 m.
        assert airborne_quad.altitude < 4.0
        assert airborne_quad.velocity[2] > 1.0

    def test_hover_throttle_holds_altitude(self):
        params = QuadrotorParameters()
        quad = Quadrotor(params, initial_state=RigidBodyState(position=np.array([0.0, 0.0, -5.0])))
        quad.arm()
        throttle = hover_throttle(params)
        # Open-loop hover: the spin-up transient costs some altitude, but the
        # vertical speed must settle near zero once thrust balances gravity.
        for _ in range(3000):
            quad.step(np.full(4, throttle), 0.001)
        assert abs(quad.altitude - 5.0) < 1.0
        assert abs(quad.velocity[2]) < 0.3

    def test_full_throttle_climbs(self, airborne_quad):
        for _ in range(1000):
            airborne_quad.step(np.ones(4), 0.001)
        assert airborne_quad.altitude > 5.0
        assert airborne_quad.velocity[2] < 0.0


class TestAttitudeResponse:
    def test_differential_thrust_rolls(self):
        params = QuadrotorParameters()
        quad = Quadrotor(params, initial_state=RigidBodyState(position=np.array([0.0, 0.0, -5.0])))
        quad.arm()
        throttle = hover_throttle(params)
        # More thrust on the left rotors (indices 1 and 2) -> positive roll.
        commands = np.array([throttle - 0.05, throttle + 0.05, throttle + 0.05, throttle - 0.05])
        for _ in range(200):
            quad.step(commands, 0.001)
        roll, pitch, _ = quad.attitude
        assert roll > 0.01
        assert abs(pitch) < 0.01

    def test_differential_thrust_pitches(self):
        params = QuadrotorParameters()
        quad = Quadrotor(params, initial_state=RigidBodyState(position=np.array([0.0, 0.0, -5.0])))
        quad.arm()
        throttle = hover_throttle(params)
        # More thrust on the front rotors (indices 0 and 2) -> positive pitch.
        commands = np.array([throttle + 0.05, throttle - 0.05, throttle + 0.05, throttle - 0.05])
        for _ in range(200):
            quad.step(commands, 0.001)
        roll, pitch, _ = quad.attitude
        assert pitch > 0.01
        assert abs(roll) < 0.01


class TestGroundAndCrash:
    def test_starts_on_ground(self):
        quad = Quadrotor()
        assert quad.on_ground

    def test_hard_impact_is_a_crash(self):
        quad = Quadrotor(initial_state=RigidBodyState(
            position=np.array([0.0, 0.0, -3.0]), velocity=np.array([0.0, 0.0, 4.0])
        ))
        quad.arm()
        for _ in range(2000):
            quad.step(np.zeros(4), 0.001)
            if quad.crashed:
                break
        assert quad.crashed
        assert quad.crash_time is not None

    def test_crashed_vehicle_stays_put(self):
        quad = Quadrotor(initial_state=RigidBodyState(
            position=np.array([0.0, 0.0, -3.0]), velocity=np.array([0.0, 0.0, 5.0])
        ))
        quad.arm()
        for _ in range(2000):
            quad.step(np.zeros(4), 0.001)
        position = quad.position.copy()
        quad.step(np.ones(4), 0.001)
        assert np.allclose(quad.position, position)

    def test_gentle_touchdown_is_not_a_crash(self):
        quad = Quadrotor(initial_state=RigidBodyState(
            position=np.array([0.0, 0.0, -0.2]), velocity=np.array([0.0, 0.0, 0.3])
        ))
        quad.arm()
        for _ in range(1000):
            quad.step(np.zeros(4), 0.001)
        assert quad.on_ground
        assert not quad.crashed


class TestEnvironmentCoupling:
    def test_wind_pushes_the_vehicle(self):
        params = QuadrotorParameters()
        env = Environment(wind=GustWind(mean_ned=np.array([3.0, 0.0, 0.0]), gust_amplitude=0.0))
        quad = Quadrotor(params, environment=env,
                         initial_state=RigidBodyState(position=np.array([0.0, 0.0, -5.0])))
        quad.arm()
        throttle = hover_throttle(params)
        for _ in range(2000):
            quad.step(np.full(4, throttle), 0.001)
        assert quad.position[0] > 0.05

    def test_specific_force_on_ground_reads_gravity_reaction(self):
        quad = Quadrotor()
        quad.arm()
        force = quad.specific_force_body()
        assert force[2] == pytest.approx(-9.80665, rel=1e-3)

"""Trajectory analysis helpers for the figure reproductions.

The paper's figures plot local position X, Y and Z against their setpoints.
These helpers extract per-axis series from a recording, quantify oscillation
and render compact ASCII summaries/plots so the benchmarks can display the
reproduced figures in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.recorder import FlightRecorder

__all__ = ["AxisSeries", "extract_axes", "oscillation_amplitude", "ascii_plot"]


@dataclass(frozen=True)
class AxisSeries:
    """One axis of the figure: time, estimated position and setpoint."""

    name: str
    times: np.ndarray
    estimated: np.ndarray
    setpoint: np.ndarray

    @property
    def error(self) -> np.ndarray:
        """Tracking error of this axis."""
        return self.estimated - self.setpoint


def extract_axes(recorder: FlightRecorder) -> list[AxisSeries]:
    """Extract the X, Y and Z series the paper plots (Z as altitude, up-positive)."""
    series = []
    for name in ("x", "y", "z"):
        times, estimated, setpoint = recorder.axis(name)
        series.append(AxisSeries(name=name.upper(), times=times, estimated=estimated,
                                 setpoint=setpoint))
    return series


def oscillation_amplitude(
    series: AxisSeries, start: float | None = None, end: float | None = None
) -> float:
    """Peak-to-peak amplitude of the tracking error within ``[start, end]``."""
    mask = np.ones_like(series.times, dtype=bool)
    if start is not None:
        mask &= series.times >= start
    if end is not None:
        mask &= series.times <= end
    if not np.any(mask):
        return 0.0
    error = series.error[mask]
    return float(np.max(error) - np.min(error))


def ascii_plot(series: AxisSeries, width: int = 72, height: int = 12) -> str:
    """Render a small ASCII plot of one axis (estimated ``*`` vs setpoint ``-``)."""
    if len(series.times) < 2:
        return f"{series.name}: not enough samples"
    times = series.times
    values = series.estimated
    setpoints = series.setpoint

    lo = float(min(values.min(), setpoints.min()))
    hi = float(max(values.max(), setpoints.max()))
    if hi - lo < 1e-9:
        hi = lo + 1e-9

    grid = [[" "] * width for _ in range(height)]
    t0, t1 = float(times[0]), float(times[-1])

    def place(time: float, value: float, char: str) -> None:
        column = int((time - t0) / (t1 - t0) * (width - 1))
        row = int((hi - value) / (hi - lo) * (height - 1))
        if grid[row][column] == " " or char == "*":
            grid[row][column] = char

    for time, value in zip(times, setpoints):
        place(time, value, "-")
    for time, value in zip(times, values):
        place(time, value, "*")

    lines = [f"{series.name} position [{lo:+.2f} m .. {hi:+.2f} m], t in [{t0:.1f}, {t1:.1f}] s"]
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)

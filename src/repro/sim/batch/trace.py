"""Timing-trace extraction for the batch core.

Task *timing* — which driver, controller, network or attack task ran when,
and which messages the network delivered to whom — depends only on the
scheduler, the container runtime, MemGuard/DRAM contention and the attack
schedule.  None of those read the plant state or the sensor noise, so every
scenario in a **timing class** (identical up to the state-only fields: seed,
setpoint, initial altitude, recording rate, geofence) shares one event
timeline.

:class:`TraceHarness` subclasses the scalar co-simulation, keeps the entire
substrate (scheduler, MAVLink connections, docker bridge, iptables, attacks)
real, and replaces every *state-math* callback with a recorder stub.  Sensor
hub timestamps are chosen as ``(index + 0.5) / 1000`` so the feeder's
``int(time * 1000)`` packs the per-sensor sample index into each forwarded
message's ``time_ms`` — the trace can then tell exactly which sample reached
the container controller on which compute, without simulating any state.

The resulting event list is cached per timing fingerprint: a 12-variant
campaign grid over (budget x attack-start x seed) needs only one trace per
(budget, attack-start) cell.
"""

from __future__ import annotations

import json

import numpy as np

from ...mavlink.messages import (
    ActuatorOutputs,
    GpsRawInt,
    HighresImu,
    LocalPositionNed,
    RcChannelsOverride,
    ScaledPressure,
)
from ...sensors.barometer import BarometerReading
from ...sensors.imu import ImuReading
from ...sensors.mocap import MocapReading
from ...sensors.rc import RcChannels
from ..flight import FlightSimulation
from ..scenario import FlightScenario

__all__ = ["TraceHarness", "timing_fingerprint", "trace_for", "clear_trace_cache"]

#: Scenario fields that influence only the state mathematics, never the task
#: timeline.  Scenarios differing only here share one timing trace.
STATE_ONLY_FIELDS = (
    "name",
    "seed",
    "setpoint",
    "record_hz",
    "geofence_radius",
    "initial_altitude",
)

_DUMMY_IMU = ImuReading(gyro=np.zeros(3), accel=np.zeros(3))
_DUMMY_BARO = BarometerReading(pressure_pa=0.0, altitude_m=0.0)
_DUMMY_RC = RcChannels(roll=1500, pitch=1500, throttle=1500, yaw=1500, mode_switch=2000)
_DUMMY_MOCAP = MocapReading(position_ned=np.zeros(3), yaw=0.0, valid=True)

#: ``ActuatorOutputs.time_ms`` is packed as uint16, which bounds the number
#: of complex-controller computes a trace can label (~262 s at 250 Hz).
MAX_COMPUTES = 0xFFFF


def timing_fingerprint(scenario: FlightScenario) -> str:
    """Canonical JSON identity of a scenario's timing class."""
    from ...store.keys import canonical

    payload = canonical(scenario)
    for field in STATE_ONLY_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _smuggle_time(index: int) -> float:
    # int(time * 1000) in the feeder recovers exactly `index`.
    return (index + 0.5) / 1000.0


class TraceHarness(FlightSimulation):
    """Scalar co-simulation with state math stubbed out by event recording.

    Events are flat tuples ``(kind, now, *payload)``; an ``("end", now)``
    marker closes each scheduler quantum.  Kinds: ``imu``/``baro``/``gps``/
    ``mocap`` (sensor sample ``index``), ``safety``, ``monitor``, ``act``,
    ``recv`` (tuple of delivered compute indices), ``cce`` (tuple of
    ``(sensor_kind, sample_index)`` frames plus the compute index),
    ``hostctl``, ``kill`` and ``end``.
    """

    def __init__(self, scenario: FlightScenario) -> None:
        super().__init__(scenario)
        self.events: list[tuple] = []
        self._imu_count = 0
        self._baro_count = 0
        self._gps_count = 0
        self._rc_count = 0
        self._mocap_count = 0
        self._compute_count = 0

    # -- sensor drivers: record the activation, smuggle the sample index --------

    def _imu_driver(self, now: float) -> None:
        index = self._imu_count
        self._imu_count += 1
        self._hub.imu = _DUMMY_IMU
        self._hub.imu_time = _smuggle_time(index)
        self._hub.imu_fresh = True
        self.events.append(("imu", now, index))

    def _baro_driver(self, now: float) -> None:
        index = self._baro_count
        self._baro_count += 1
        self._hub.baro = _DUMMY_BARO
        self._hub.baro_time = _smuggle_time(index)
        self._hub.baro_fresh = True
        self.events.append(("baro", now, index))

    def _gps_driver(self, now: float) -> None:
        index = self._gps_count
        self._gps_count += 1
        self._hub.gps_position = np.zeros(3)
        self._hub.gps_geodetic = (0.0, 0.0, 0.0)
        self._hub.gps_velocity = np.zeros(3)
        self._hub.gps_time = _smuggle_time(index)
        self._hub.gps_fresh = True
        self.events.append(("gps", now, index))

    def _rc_driver(self, now: float) -> None:
        # RC is provably state-neutral here: the scripted pilot always selects
        # POSITION mode, which is also the initial mode, and nothing else
        # reads the channels.  The activation is still replayed through the
        # scheduler (it was never removed), but needs no replay op.
        index = self._rc_count
        self._rc_count += 1
        self._hub.rc = _DUMMY_RC
        self._hub.rc_time = _smuggle_time(index)
        self._hub.rc_fresh = True

    def _mocap_driver(self, now: float) -> None:
        index = self._mocap_count
        self._mocap_count += 1
        self._hub.mocap = _DUMMY_MOCAP
        self._hub.mocap_time = _smuggle_time(index)
        self._hub.mocap_fresh = True
        self.events.append(("mocap", now, index))

    # -- HCE control-plane tasks -------------------------------------------------

    def _actuator_driver(self, now: float) -> None:
        self.events.append(("act", now))

    def _safety_controller_step(self, now: float) -> None:
        self.events.append(("safety", now))

    def _monitor_step(self, now: float) -> None:
        if self.scenario.config.monitor.enabled:
            self.events.append(("monitor", now))

    def _receiver_step(self, now: float) -> None:
        batch = self.scenario.config.communication.receiver_batch_size
        frames = self.hce_motor_rx.receive(now, max_datagrams=batch)
        computes = tuple(
            frame.message.time_ms
            for frame in frames
            if isinstance(frame.message, ActuatorOutputs)
        )
        if computes:
            self.events.append(("recv", now, computes))

    def _host_controller_step(self, now: float) -> None:
        if not self.complex_controller.alive:
            return
        self.events.append(("hostctl", now))

    # -- CCE tasks ----------------------------------------------------------------

    def _cce_controller_step(self, now: float) -> None:
        if not self.complex_controller.alive:
            return
        frames = self.cce_sensor_rx.receive(now)
        dispatched: list[tuple[str, int]] = []
        for frame in frames:
            message = frame.message
            if isinstance(message, HighresImu):
                dispatched.append(("imu", message.time_ms))
            elif isinstance(message, ScaledPressure):
                dispatched.append(("baro", message.time_ms))
            elif isinstance(message, GpsRawInt):
                dispatched.append(("gps", message.time_ms))
            elif isinstance(message, LocalPositionNed):
                dispatched.append(("mocap", message.time_ms))
            elif isinstance(message, RcChannelsOverride):
                # State-neutral, like the RC driver above.
                continue
        compute = self._compute_count
        self._compute_count += 1
        if compute > MAX_COMPUTES:
            raise ValueError(
                f"trace exceeds {MAX_COMPUTES} complex-controller computes; "
                "the uint16 time_ms labelling cannot address longer flights"
            )
        self.events.append(("cce", now, tuple(dispatched), compute))
        # The dummy outbox has the same wire size as a real command, so the
        # publisher/bridge/iptables/receiver path behaves identically; the
        # compute index rides in time_ms.
        self._cce_outbox = ActuatorOutputs(
            time_ms=compute, motors=(0.57, 0.57, 0.57, 0.57), sequence=compute & 0xFF
        )

    # -- events and stepping --------------------------------------------------------

    def _apply_event_attacks(self, now: float) -> None:
        was_killed = self._controller_killed
        super()._apply_event_attacks(now)
        if self._controller_killed and not was_killed:
            self.events.append(("kill", now))

    def step(self) -> None:
        dt = self.scenario.physics_dt
        self.scheduler.advance(dt)
        now = self.scheduler.time
        self._apply_event_attacks(now)
        self.events.append(("end", now))

    def run_trace(self) -> list[tuple]:
        """Trace the full scenario duration (crashes are a replay concern)."""
        steps = int(round(self.scenario.duration / self.scenario.physics_dt))
        for _ in range(steps):
            self.step()
        return self.events


_TRACE_CACHE: dict[str, list[tuple]] = {}


def trace_for(scenario: FlightScenario) -> list[tuple]:
    """Event trace of the scenario's timing class, computed once and cached."""
    fingerprint = timing_fingerprint(scenario)
    events = _TRACE_CACHE.get(fingerprint)
    if events is None:
        events = TraceHarness(scenario).run_trace()
        _TRACE_CACHE[fingerprint] = events
    return events


def clear_trace_cache() -> None:
    """Drop all cached timing traces (tests and long-lived workers)."""
    _TRACE_CACHE.clear()

"""Security monitor and its rules (Section III-E of the paper).

The monitor runs on the HCE and continuously checks two rules over the output
received from the container and over the physical state of the drone:

* **Receiving interval** — the time between two consecutive actuator outputs
  received from the CCE must not exceed a threshold; a long gap means the
  complex controller has failed or is being starved.
* **Attitude errors** — the roll, pitch and yaw errors must stay bounded;
  large errors mean the drone is in a dangerous state regardless of what the
  CCE claims to be doing.

Upon a violation the framework kills the HCE receiving thread and switches the
output source to the safety controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import MonitorConfig

__all__ = [
    "MonitorContext",
    "Violation",
    "SecurityRule",
    "ReceivingIntervalRule",
    "AttitudeErrorRule",
    "SecurityMonitor",
]


@dataclass(frozen=True)
class MonitorContext:
    """Snapshot of everything the monitor inspects on one activation.

    Attributes
    ----------
    now:
        Current time [s].
    engaged_at:
        Time at which the complex controller became the active output source.
    last_receive_time:
        Time the HCE last received an actuator output from the CCE, or
        ``None`` if nothing has been received yet.
    roll_error, pitch_error, yaw_error:
        Attitude errors of the drone [rad], as estimated on the HCE.
    """

    now: float
    engaged_at: float
    last_receive_time: float | None
    roll_error: float
    pitch_error: float
    yaw_error: float


@dataclass(frozen=True)
class Violation:
    """A detected security-rule violation."""

    rule: str
    time: float
    message: str


class SecurityRule:
    """Base class for monitor rules."""

    name = "rule"

    def check(self, context: MonitorContext) -> Violation | None:
        """Return a violation if the rule is broken in ``context``."""
        raise NotImplementedError


class ReceivingIntervalRule(SecurityRule):
    """The CCE must deliver actuator outputs at least every ``max_interval``."""

    name = "receiving-interval"

    def __init__(self, max_interval: float) -> None:
        if max_interval <= 0.0:
            raise ValueError("max_interval must be positive")
        self.max_interval = float(max_interval)

    def check(self, context: MonitorContext) -> Violation | None:
        reference = context.last_receive_time
        if reference is None:
            reference = context.engaged_at
        gap = context.now - reference
        if gap > self.max_interval:
            return Violation(
                rule=self.name,
                time=context.now,
                message=(
                    f"no output from the complex controller for {gap:.3f} s "
                    f"(threshold {self.max_interval:.3f} s)"
                ),
            )
        return None


class AttitudeErrorRule(SecurityRule):
    """Roll, pitch and yaw errors must stay within their bounds."""

    name = "attitude-error"

    def __init__(self, max_roll: float, max_pitch: float, max_yaw: float) -> None:
        if min(max_roll, max_pitch, max_yaw) <= 0.0:
            raise ValueError("attitude error bounds must be positive")
        self.max_roll = float(max_roll)
        self.max_pitch = float(max_pitch)
        self.max_yaw = float(max_yaw)

    def check(self, context: MonitorContext) -> Violation | None:
        breaches = []
        if abs(context.roll_error) > self.max_roll:
            breaches.append(f"roll error {context.roll_error:+.3f} rad")
        if abs(context.pitch_error) > self.max_pitch:
            breaches.append(f"pitch error {context.pitch_error:+.3f} rad")
        if abs(context.yaw_error) > self.max_yaw:
            breaches.append(f"yaw error {context.yaw_error:+.3f} rad")
        if breaches:
            return Violation(
                rule=self.name,
                time=context.now,
                message="attitude bound exceeded: " + ", ".join(breaches),
            )
        return None


class SecurityMonitor:
    """Evaluates the security rules and records violations."""

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config or MonitorConfig()
        self.rules: list[SecurityRule] = [
            ReceivingIntervalRule(self.config.max_receive_interval),
            AttitudeErrorRule(
                self.config.max_roll_error,
                self.config.max_pitch_error,
                self.config.max_yaw_error,
            ),
        ]
        self.violations: list[Violation] = []
        self.checks_performed = 0

    @property
    def violated(self) -> bool:
        """True once any rule has been violated."""
        return bool(self.violations)

    @property
    def first_violation(self) -> Violation | None:
        """The first recorded violation, if any."""
        return self.violations[0] if self.violations else None

    def add_rule(self, rule: SecurityRule) -> None:
        """Install an additional rule (used by extension examples)."""
        self.rules.append(rule)

    def check(self, context: MonitorContext) -> Violation | None:
        """Evaluate every rule; record and return the first violation found."""
        if not self.config.enabled:
            return None
        self.checks_performed += 1
        if context.now - context.engaged_at < self.config.arming_grace_period:
            return None
        for rule in self.rules:
            violation = rule.check(context)
            if violation is not None:
                self.violations.append(violation)
                return violation
        return None

"""PID controller primitive shared by every control loop.

The implementation mirrors the structure used in small autopilots: parallel
form with output clamping, back-calculation-free integral anti-windup (the
integrator freezes while the output is saturated in the same direction) and an
optional first-order filter on the derivative term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PidGains", "PidController"]


@dataclass(frozen=True)
class PidGains:
    """Gains and limits for one PID loop."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    integral_limit: float = float("inf")
    output_limit: float = float("inf")
    derivative_filter_tau: float = 0.0

    def __post_init__(self) -> None:
        if self.integral_limit < 0.0 or self.output_limit < 0.0:
            raise ValueError("limits must be non-negative")
        if self.derivative_filter_tau < 0.0:
            raise ValueError("derivative_filter_tau must be non-negative")


class PidController:
    """Single-axis PID controller with clamping anti-windup."""

    def __init__(self, gains: PidGains) -> None:
        self.gains = gains
        self._integral = 0.0
        self._previous_error: float | None = None
        self._derivative = 0.0

    def reset(self) -> None:
        """Clear the integrator and derivative memory."""
        self._integral = 0.0
        self._previous_error = None
        self._derivative = 0.0

    @property
    def integral(self) -> float:
        """Current integrator state."""
        return self._integral

    def update(self, error: float, dt: float, derivative: float | None = None) -> float:
        """Advance the controller by ``dt`` and return the control output.

        Parameters
        ----------
        error:
            Setpoint minus measurement.
        dt:
            Time since the previous update [s].
        derivative:
            Optional externally measured error derivative (e.g. a gyro rate);
            when omitted the derivative is computed by finite differences.
        """
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        gains = self.gains

        if derivative is None:
            if self._previous_error is None:
                raw_derivative = 0.0
            else:
                raw_derivative = (error - self._previous_error) / dt
        else:
            raw_derivative = derivative
        self._previous_error = error

        if gains.derivative_filter_tau > 0.0:
            alpha = dt / (gains.derivative_filter_tau + dt)
            self._derivative += alpha * (raw_derivative - self._derivative)
        else:
            self._derivative = raw_derivative

        candidate_integral = self._integral + error * dt
        candidate_integral = max(-gains.integral_limit, min(gains.integral_limit, candidate_integral))

        unsaturated = gains.kp * error + gains.ki * candidate_integral + gains.kd * self._derivative
        output = max(-gains.output_limit, min(gains.output_limit, unsaturated))

        # Anti-windup: only accept the new integral if the output is not
        # saturated, or if the error is driving the output away from the rail.
        if output == unsaturated or error * output < 0.0:
            self._integral = candidate_integral

        return output

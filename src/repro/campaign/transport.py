"""JSON-lines-over-TCP work-queue transport for hosts that share no filesystem.

The :class:`~repro.campaign.workqueue.FileWorkQueue` makes "distributed" mean
"anything that shares a directory".  This module removes the shared-directory
requirement: :class:`SocketWorkQueue` is a coordinator-hosted TCP server whose
in-memory state implements the same
:class:`~repro.campaign.workqueue.WorkQueue` protocol, and
:class:`SocketWorkQueueClient` is the worker side used by
``python -m repro.campaign.worker --connect host:port``.

The queue state, request handling and worker-side client logic are
transport-agnostic: :class:`NetworkWorkQueue` / :class:`NetworkWorkQueueClient`
carry everything except the wire, and the HTTP transport
(:mod:`repro.campaign.transport_http`) reuses them verbatim — parity between
the network transports is inheritance, not duplication.

Wire protocol: one request per connection, one JSON object per line; task
payloads and results are pickled and base64-encoded inside the JSON (the same
trust model as the file queue — only run workers you would also hand a pickle
file to).  Operations mirror the queue protocol::

    {"op": "claim", "worker": "w123"}
        -> {"ok": true, "index": 3, "run": "r...", "payload": "<b64>",
            "lease": "<token>"}
        -> {"ok": true, "index": null}           # nothing pending
    {"op": "heartbeat", "lease": "<token>"}      -> {"ok": true}
    {"op": "complete", "index": 3, "run": "r...",
     "lease": "<token>", "result": "<b64>"}      -> {"ok": true}
    {"op": "stop"}                               -> {"ok": true, "stop": false}
    {"op": "retire"}                             -> {"ok": true, "retire": false}
    {"op": "ping"}                               -> {"ok": true}

**Authentication** — a coordinator constructed with ``auth_token`` requires
every request to carry a matching ``"token"`` field (compared in constant
time via :func:`hmac.compare_digest`).  Unauthenticated requests are answered
with the *distinct* response ``{"ok": false, "denied": "auth", ...}`` — never
the generic degrade path — and the client raises
:class:`~repro.campaign.workqueue.WorkQueueAuthError` so a misconfigured
worker exits with a clear message instead of retry-looping.  The token never
appears in logs, error messages or results.

Fault semantics match the file transport exactly:

* **Heartbeat leases** — the server timestamps every heartbeat;
  ``reclaim_expired`` moves stale claims back into the pending set and the
  task is re-issued.  A worker whose TCP connection dies mid-task simply
  stops heartbeating — the disconnect *is* the missed heartbeat.
* **Run namespacing** — ``complete`` messages carry the run id the task was
  claimed under; a server ignores results of other runs, so a worker of a
  killed previous campaign finishing late cannot smuggle its outcome into a
  new run listening on the same port.
* **Orphan detection** — there is no coordinator heartbeat file; server
  *reachability* is the heartbeat.  The client tracks its last successful
  round trip and reports the elapsed time as ``coordinator_age()``, so the
  worker's standard orphan timeout applies unchanged.  Transient
  unreachability (a coordinator restarting) merely degrades: ``claim``
  returns ``None``, ``stop_requested`` returns ``False``, and the worker
  keeps polling until the server is back or the orphan timeout expires.
"""

from __future__ import annotations

import base64
import hmac
import json
import logging
import pickle
import socket
import socketserver
import threading
import time
import uuid
from typing import Any, Iterable, NamedTuple

from ..obs import MetricsRegistry
from .workqueue import _DEFAULT_RUN, WorkQueueAuthError, validate_run_id

logger = logging.getLogger(__name__)

__all__ = [
    "NetworkWorkQueue",
    "NetworkWorkQueueClient",
    "SocketWorkQueue",
    "SocketWorkQueueClient",
    "parse_address",
]


def parse_address(text: str) -> tuple[str, int]:
    """Split ``host:port`` (IPv6 hosts may be bracketed: ``[::1]:9000``)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address {text!r} must be host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None
    return host.strip("[]"), port


def _encode(value: Any) -> str:
    return base64.b64encode(pickle.dumps(value)).decode("ascii")


def _decode(blob: str) -> Any:
    return pickle.loads(base64.b64decode(blob.encode("ascii")))


class _Lease(NamedTuple):
    """Client-side lease handle: opaque to the worker loop, it carries the
    token plus the run id the task must be answered under."""

    token: str
    run: str
    index: int


class _Claim:
    """Server-side record of one leased task."""

    __slots__ = ("index", "payload", "worker_id", "last_beat")

    def __init__(self, index: int, payload: bytes, worker_id: str) -> None:
        self.index = index
        self.payload = payload
        self.worker_id = worker_id
        self.last_beat = time.time()


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # pragma: no cover - exercised via the client
        line = self.rfile.readline()
        if not line:
            return
        try:
            request = json.loads(line)
            response = self.server.work_queue._handle(request)
        except Exception as exc:
            response = {"ok": False, "error": repr(exc)}
        try:
            self.wfile.write((json.dumps(response) + "\n").encode("ascii"))
        except OSError:
            pass  # client went away mid-response; its next poll retries


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    work_queue: "NetworkWorkQueue"


class NetworkWorkQueue:
    """In-memory coordinator-side work queue served over a network transport.

    Everything except the wire lives here: the pending/claimed/result state,
    every :class:`~repro.campaign.workqueue.WorkQueue` method, the request
    dispatcher (:meth:`_handle`) and the shared-secret check.  Subclasses
    only provide the server: :meth:`_make_server` returns a started-ready
    ``socketserver`` instance whose handler feeds requests to
    :meth:`_handle` (:class:`SocketWorkQueue` speaks JSON lines over raw
    TCP, :class:`~repro.campaign.transport_http.HttpWorkQueue` speaks
    HTTP/JSON).

    Task payloads are pickled at :meth:`enqueue` time (like the file
    transport, so an unpicklable payload fails loudly in the coordinator,
    not silently on a worker) and kept in memory; nothing touches disk.

    With ``auth_token`` set, every wire request must carry the matching
    token; in-process calls (the coordinator's own) bypass the wire and
    need none.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        run_id: str | None = None,
        auth_token: str | None = None,
    ) -> None:
        if run_id is not None:
            validate_run_id(run_id)
        if auth_token is not None and not auth_token:
            raise ValueError("auth_token must be a non-empty string")
        self.run_id = run_id or _DEFAULT_RUN
        self._auth_token = auth_token
        self._lock = threading.Lock()
        self._pending: dict[int, bytes] = {}
        self._claims: dict[str, _Claim] = {}
        self._results: dict[int, Any] = {}
        self._stop = False
        self._retire_credits = 0
        self._started = time.time()
        # Unlike the directory queue, every operation of every worker flows
        # through this server, so these counters are authoritative for the
        # whole run — the HTTP transport serves them at ``GET /metrics``.
        self.metrics = MetricsRegistry()
        self._m_enqueued = self.metrics.counter(
            "repro_queue_enqueued_total", "Tasks enqueued on this coordinator.")
        self._m_claims = self.metrics.counter(
            "repro_queue_claims_total", "Task leases issued.")
        self._m_completions = self.metrics.counter(
            "repro_queue_completions_total", "Results accepted (any run id).")
        self._m_heartbeats = self.metrics.counter(
            "repro_queue_heartbeats_total", "Lease heartbeats received.")
        self._m_reissues = self.metrics.counter(
            "repro_queue_lease_reissues_total", "Expired leases re-queued.")
        self._m_denied = self.metrics.counter(
            "repro_queue_auth_denials_total",
            "Wire requests rejected by the shared-secret check.")
        self._g_pending = self.metrics.gauge(
            "repro_queue_pending", "Tasks awaiting a claim right now.")
        self._g_claimed = self.metrics.gauge(
            "repro_queue_claimed", "Tasks currently under lease.")
        self._server = self._make_server(host, port)
        self._server.work_queue = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"{type(self).__name__}-{self.run_id}",
            daemon=True,
        )
        self._thread.start()

    def _make_server(self, host: str, port: int) -> socketserver.BaseServer:
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        host, port = self._server.server_address[:2]
        return host, port

    def close(self) -> None:
        """Stop serving.  Workers observe connection failures from here on
        and retire via their orphan timeout."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "NetworkWorkQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- coordinator side --------------------------------------------------------

    def enqueue(self, index: int, payload: Any) -> None:
        blob = pickle.dumps(payload)
        with self._lock:
            self._pending[index] = blob
        self._m_enqueued.inc()

    def reset(self) -> None:
        with self._lock:
            self._pending.clear()
            self._claims.clear()
            self._results.clear()
            self._stop = False
            self._retire_credits = 0

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        now = time.time()
        reclaimed: list[int] = []
        with self._lock:
            for token, claim in list(self._claims.items()):
                if now - claim.last_beat <= lease_timeout:
                    continue
                del self._claims[token]
                self._pending[claim.index] = claim.payload
                reclaimed.append(claim.index)
        for index in reclaimed:
            self._m_reissues.inc()
            logger.warning("lease on task %d expired; re-queued", index)
        return reclaimed

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        known = set(seen)
        with self._lock:
            return {
                index: result
                for index, result in self._results.items()
                if index not in known
            }

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def request_stop(self) -> None:
        with self._lock:
            self._stop = True

    def touch_coordinator(self) -> None:
        """No-op: over the network, server reachability *is* the coordinator
        heartbeat (see the module docstring)."""

    def set_retire_credits(self, count: int) -> None:
        with self._lock:
            self._retire_credits = max(0, count)

    # -- worker side (also served over the wire via _handle) ---------------------

    def claim(self, worker_id: str) -> tuple[int, Any, Any] | None:
        claimed = self._claim_blob(worker_id)
        if claimed is None:
            return None
        index, blob, token = claimed
        return index, pickle.loads(blob), _Lease(token, self.run_id, index)

    def heartbeat(self, lease: Any) -> None:
        token = lease.token if isinstance(lease, _Lease) else lease
        with self._lock:
            claim = self._claims.get(token)
            if claim is not None:
                claim.last_beat = time.time()
        self._m_heartbeats.inc()

    def complete(self, index: int, result: Any, lease: Any | None = None) -> None:
        run = lease.run if isinstance(lease, _Lease) else self.run_id
        token = lease.token if isinstance(lease, _Lease) else None
        self._complete(index, run, result, token)

    def stop_requested(self) -> bool:
        with self._lock:
            return self._stop

    def coordinator_age(self) -> float | None:
        return 0.0  # in-process callers share the coordinator's fate

    def try_retire(self) -> bool:
        with self._lock:
            if self._retire_credits > 0:
                self._retire_credits -= 1
                return True
        return False

    # -- observability -----------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Live queue state, JSON-ready (``GET /status`` on the HTTP
        transport).  Leases are described — index, worker, heartbeat age —
        but their tokens are capability handles and never leave the server.
        """
        now = time.time()
        with self._lock:
            pending = len(self._pending)
            done = len(self._results)
            stop = self._stop
            retire = self._retire_credits
            claimed = [
                {
                    "index": claim.index,
                    "worker": claim.worker_id,
                    "lease_age_s": round(max(0.0, now - claim.last_beat), 3),
                }
                for claim in self._claims.values()
            ]
        claimed.sort(key=lambda entry: entry["index"])
        return {
            "run": self.run_id,
            "uptime_s": round(now - self._started, 3),
            "auth": self._auth_token is not None,
            "pending": pending,
            "claimed": claimed,
            "done": done,
            "stop": stop,
            "retire_credits": retire,
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of this queue's registry (depth
        gauges are refreshed at render time)."""
        with self._lock:
            pending, claimed = len(self._pending), len(self._claims)
        self._g_pending.set(pending)
        self._g_claimed.set(claimed)
        return self.metrics.render_prometheus()

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counter snapshot plus current depths (JSON-ready); same
        shape as :meth:`FileWorkQueue.stats_snapshot`, with the wire-only
        ``auth_denials`` extra."""
        with self._lock:
            pending, claimed = len(self._pending), len(self._claims)
        return {
            "enqueued": int(self._m_enqueued.value()),
            "claims": int(self._m_claims.value()),
            "completions": int(self._m_completions.value()),
            "heartbeats": int(self._m_heartbeats.value()),
            "lease_reissues": int(self._m_reissues.value()),
            "auth_denials": int(self._m_denied.value()),
            "pending": pending,
            "claimed": claimed,
        }

    # -- internal ----------------------------------------------------------------

    def _claim_blob(self, worker_id: str) -> tuple[int, bytes, str] | None:
        with self._lock:
            if not self._pending:
                return None
            index = min(self._pending)  # lowest pending index first
            blob = self._pending.pop(index)
            token = uuid.uuid4().hex
            self._claims[token] = _Claim(index, blob, worker_id)
        self._m_claims.inc()
        logger.debug("leased task %d to worker %s", index, worker_id)
        return index, blob, token

    def _requeue(self, token: Any) -> None:
        """Return a claimed task to the pending set (failed hand-back).

        A ``None``/unknown token is a no-op: the lease was already
        reclaimed, so the task is pending (or completed by its re-claimer)
        already.
        """
        with self._lock:
            claim = self._claims.pop(token, None) if token else None
            if claim is not None:
                self._pending[claim.index] = claim.payload

    def _complete(
        self, index: int, run: str, result: Any, token: str | None
    ) -> None:
        with self._lock:
            if token is not None:
                self._claims.pop(token, None)
            if run == self.run_id:
                self._results[index] = result
        self._m_completions.inc()
            # else: a late answer from another (killed) run — lease released,
            # result ignored, matching FileWorkQueue.collect's run filter.

    def _check_auth(self, request: dict[str, Any]) -> dict[str, Any] | None:
        """Denied-response for an unauthenticated request, ``None`` when ok.

        The check is constant-time (:func:`hmac.compare_digest`) and the
        responses never echo either token.  ``denied: "auth"`` is the
        distinct marker clients turn into a
        :class:`~repro.campaign.workqueue.WorkQueueAuthError` instead of
        the silent degrade every other failure gets.
        """
        if self._auth_token is None:
            return None
        supplied = request.get("token")
        if not isinstance(supplied, str):
            self._m_denied.inc()
            logger.warning(
                "denied wire request op=%r: no auth token supplied",
                request.get("op"),
            )
            return {
                "ok": False,
                "denied": "auth",
                "error": "unauthenticated: this coordinator requires an "
                         "auth token and none was supplied (pass "
                         "--auth-token or set REPRO_CAMPAIGN_AUTH_TOKEN)",
            }
        if not hmac.compare_digest(
            supplied.encode("utf-8"), self._auth_token.encode("utf-8")
        ):
            self._m_denied.inc()
            logger.warning(
                "denied wire request op=%r: auth token rejected",
                request.get("op"),
            )
            return {
                "ok": False,
                "denied": "auth",
                "error": "unauthenticated: auth token rejected by the "
                         "coordinator",
            }
        return None

    def _handle(self, request: dict[str, Any]) -> dict[str, Any]:
        """Serve one wire request (called from server handler threads)."""
        denied = self._check_auth(request)
        if denied is not None:
            return denied
        op = request.get("op")
        if op == "claim":
            claimed = self._claim_blob(str(request.get("worker", "?")))
            if claimed is None:
                # A claim that finds nothing proves the worker is idle at
                # this very moment — the only state in which a retire
                # credit may dismiss it.  Answering the retire question
                # here saves the worker a dedicated round trip per poll.
                return {"ok": True, "index": None, "retire": self.try_retire()}
            index, blob, token = claimed
            return {
                "ok": True,
                "index": index,
                "run": self.run_id,
                "payload": base64.b64encode(blob).decode("ascii"),
                "lease": token,
            }
        if op == "heartbeat":
            self.heartbeat(str(request.get("lease", "")))
            return {"ok": True}
        if op == "complete":
            try:
                result = _decode(request["result"])
            except Exception as exc:
                # A result the coordinator cannot decode is dropped, but
                # the task must not be lost with it: put the claimed
                # payload straight back into the pending set (releasing
                # the lease alone would strand the task — reclaim only
                # scans live claims) so another worker re-flies it.
                self._requeue(request.get("lease"))
                return {"ok": False, "error": f"undecodable result: {exc!r}"}
            self._complete(
                int(request["index"]),
                str(request.get("run", "")),
                result,
                request.get("lease"),
            )
            return {"ok": True}
        if op == "stop":
            return {"ok": True, "stop": self.stop_requested()}
        if op == "retire":
            return {"ok": True, "retire": self.try_retire()}
        if op == "ping":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


class SocketWorkQueue(NetworkWorkQueue):
    """Coordinator-hosted TCP work queue (server side of the transport).

    Constructing the queue binds and starts the server — ``port=0`` picks an
    ephemeral port, published via :attr:`address`.  The object itself is a
    full :class:`~repro.campaign.workqueue.WorkQueue`: the coordinator calls
    the same ``enqueue``/``collect``/``reclaim_expired`` methods it would on
    a :class:`~repro.campaign.workqueue.FileWorkQueue`, while remote workers
    reach the worker-side half through :class:`SocketWorkQueueClient`.
    """

    def _make_server(self, host: str, port: int) -> socketserver.BaseServer:
        return _Server((host, port), _Handler)


class NetworkWorkQueueClient:
    """Worker-side :class:`~repro.campaign.workqueue.WorkQueue` over a wire.

    Every operation is one short-lived request, so a worker holds no state
    the coordinator could leak: a dropped connection mid-task only stops
    the heartbeat, and the lease expires like any other death.  A
    temporarily unreachable coordinator degrades instead of raising —
    ``claim`` returns ``None``, ``stop_requested`` returns ``False`` — so a
    worker survives a coordinator *restart* on the same address and resumes
    claiming from the new run; :meth:`coordinator_age` grows from the last
    successful round trip so the standard orphan timeout eventually ends a
    worker whose coordinator never comes back.

    The one failure that does *not* degrade is an authentication rejection
    (``denied: "auth"`` from the server): polling can never fix a wrong
    shared secret, so it raises
    :class:`~repro.campaign.workqueue.WorkQueueAuthError` for the worker to
    surface and exit on.

    Subclasses provide :meth:`_send` — one message out, one parsed JSON
    response back (``None`` on any transport failure).
    """

    def __init__(
        self, timeout: float = 10.0, auth_token: str | None = None
    ) -> None:
        if auth_token is not None and not auth_token:
            raise ValueError("auth_token must be a non-empty string")
        self._timeout = timeout
        self._auth_token = auth_token
        self._last_contact = time.time()
        self._retire_answer: bool | None = None

    def _send(self, message: dict[str, Any]) -> dict[str, Any] | None:
        raise NotImplementedError  # pragma: no cover - subclass hook

    # -- worker side -------------------------------------------------------------

    def claim(self, worker_id: str) -> tuple[int, Any, Any] | None:
        response = self._request({"op": "claim", "worker": worker_id})
        if response is None:
            return None
        if response.get("index") is None:
            # An idle claim carries the retire answer (see the server);
            # cache it for the try_retire call that follows in the worker
            # loop, sparing it a connection per poll tick.
            self._retire_answer = bool(response.get("retire"))
            return None
        index = int(response["index"])
        lease = _Lease(str(response["lease"]), str(response["run"]), index)
        try:
            payload = _decode(response["payload"])
        except Exception as exc:
            # Same poison-pill rule as the file transport: a payload whose
            # function is not importable here must come back as a failed
            # result, not crash-loop every worker that claims it.
            self.complete(
                index, ("error", f"unreadable task payload: {exc!r}"), lease
            )
            return None
        return index, payload, lease

    def heartbeat(self, lease: Any) -> None:
        self._request({"op": "heartbeat", "lease": lease.token})

    def complete(self, index: int, result: Any, lease: Any | None = None) -> None:
        message = {
            "op": "complete",
            "index": index,
            "run": lease.run if isinstance(lease, _Lease) else "",
            "result": _encode(result),
        }
        if isinstance(lease, _Lease):
            message["lease"] = lease.token
        # Best effort: if the coordinator is gone the result is lost, the
        # lease expires on whatever coordinator replaces it, and the task is
        # re-issued — exactly the crashed-worker path.
        self._request(message)

    def stop_requested(self) -> bool:
        response = self._request({"op": "stop"})
        return bool(response and response.get("stop"))

    def coordinator_age(self) -> float | None:
        age = max(0.0, time.time() - self._last_contact)
        if age < self._timeout:
            # The stop/claim polls of the current worker tick already
            # probed reachability and refreshed the contact time; a
            # dedicated ping here would be a wasted connection per tick.
            return age
        if self._request({"op": "ping"}) is not None:
            return 0.0
        return max(0.0, time.time() - self._last_contact)

    def try_retire(self) -> bool:
        answer, self._retire_answer = self._retire_answer, None
        if answer is not None:
            return answer  # piggybacked on the preceding idle claim
        response = self._request({"op": "retire"})
        return bool(response and response.get("retire"))

    # -- coordinator-side protocol methods (a client is worker-only) -------------

    def enqueue(self, index: int, payload: Any) -> None:
        raise NotImplementedError("enqueue tasks on the coordinator's work queue")

    def reset(self) -> None:
        raise NotImplementedError("reset happens on the coordinator's work queue")

    def reclaim_expired(self, lease_timeout: float) -> list[int]:
        raise NotImplementedError("leases are reclaimed by the coordinator")

    def collect(self, seen: Iterable[int] = ()) -> dict[int, Any]:
        raise NotImplementedError("results are collected by the coordinator")

    def pending_count(self) -> int:
        raise NotImplementedError("pending counts live on the coordinator")

    def request_stop(self) -> None:
        raise NotImplementedError("stop is requested by the coordinator")

    def touch_coordinator(self) -> None:
        raise NotImplementedError("only the coordinator heartbeats itself")

    def set_retire_credits(self, count: int) -> None:
        raise NotImplementedError("retire credits are granted by the coordinator")

    # -- internal ----------------------------------------------------------------

    def _request(self, message: dict[str, Any]) -> dict[str, Any] | None:
        """One round trip: ``None`` on failure, raises on auth rejection."""
        if self._auth_token is not None:
            message = {**message, "token": self._auth_token}
        response = self._send(message)
        if not response:
            return None
        if not response.get("ok"):
            if response.get("denied") == "auth":
                # The one non-degradable failure: retrying cannot fix a
                # wrong shared secret, so surface it loudly.  The server's
                # message never contains a token.
                raise WorkQueueAuthError(
                    str(response.get("error") or "unauthenticated")
                )
            return None
        self._last_contact = time.time()
        return response


class SocketWorkQueueClient(NetworkWorkQueueClient):
    """Worker-side :class:`~repro.campaign.workqueue.WorkQueue` over TCP:
    one short-lived connection and one JSON line per operation."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        auth_token: str | None = None,
    ) -> None:
        super().__init__(timeout=timeout, auth_token=auth_token)
        self._address = (host, port)

    def _send(self, message: dict[str, Any]) -> dict[str, Any] | None:
        try:
            with socket.create_connection(
                self._address, timeout=self._timeout
            ) as connection:
                connection.sendall((json.dumps(message) + "\n").encode("ascii"))
                with connection.makefile("rb") as reader:
                    line = reader.readline()
            return json.loads(line) if line else None
        except (OSError, ValueError):
            return None

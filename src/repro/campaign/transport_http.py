"""HTTP/JSON work-queue transport for worker fleets behind proxies.

The TCP transport (:mod:`repro.campaign.transport`) requires raw socket
reach to the coordinator.  Real heterogeneous fleets often only have HTTP:
workers sit behind corporate proxies, coordinators behind reverse proxies or
load balancers that speak nothing else.  :class:`HttpWorkQueue` hosts the
same in-memory queue state as :class:`~repro.campaign.transport.SocketWorkQueue`
— both inherit it from :class:`~repro.campaign.transport.NetworkWorkQueue`,
so claim exclusivity, heartbeat leases, run namespacing, poison pills and
retire credits are *shared code*, not re-implementations — behind a plain
HTTP server, and :class:`HttpWorkQueueClient` is the worker side used by
``python -m repro.campaign.worker --connect-http URL``.

Wire protocol: each queue operation is one ``POST`` to an endpoint named
after it, with the remaining message fields as a JSON body and the response
as a JSON body — the exact dialect of the TCP transport, addressed by path
instead of an ``"op"`` field::

    POST <base>/claim      {"worker": "w123"}          -> 200 {"ok": true, ...}
    POST <base>/heartbeat  {"lease": "<token>"}        -> 200 {"ok": true}
    POST <base>/complete   {"index": 3, "run": "r...",
                            "lease": "...", "result": "<b64>"}
    POST <base>/stop       {}                          -> 200 {"ok": true, "stop": false}
    POST <base>/retire     {}                          -> 200 {"ok": true, "retire": false}
    POST <base>/ping       {}                          -> 200 {"ok": true, "protocol": 2, ...}
    GET  <base>/ping                                   -> 200 {"ok": true, "protocol": 2, ...}
    GET  <base>/metrics                                -> 200 Prometheus text
    GET  <base>/status                                 -> 200 {"run": ..., "pending": ...}

When a :class:`~repro.campaign.service.CampaignService` is attached to the
server (service mode), the run-registry API is routed here too::

    POST   <base>/runs              {"spec": {...}} or {"tasks": [...]}
    GET    <base>/runs              registry listing
    GET    <base>/runs/<id>/status  one run's lifecycle + queue state
    GET    <base>/runs/<id>/results one run's results (auth required)
    DELETE <base>/runs/<id>         cancel the run
    POST   <base>/rotate-token      {"new_token": "..."} (auth required)

The mutating endpoints and ``/results`` require the shared secret when auth
is enabled — in the JSON body (``"token"``) or the ``X-Auth-Token`` header
(GET/DELETE have no body).  ``GET /runs`` and per-run status stay
unauthenticated like the other observability surfaces.

Every exchange is a single self-contained request/response — no streaming,
no connection reuse required, no server push — so any reverse proxy, load
balancer or tunnel that can forward a POST can sit in front of the
coordinator.  ``--connect-http`` accepts a path prefix
(``http://lb.example.com/campaign``) and ``https://`` URLs for fleets whose
proxy terminates TLS.  The ``GET /ping`` endpoint doubles as a health check
for load balancers.

Authentication is the shared scheme of
:class:`~repro.campaign.transport.NetworkWorkQueue`: with ``auth_token``
set, unauthenticated requests get ``401`` with ``{"denied": "auth"}`` and
the client raises :class:`~repro.campaign.workqueue.WorkQueueAuthError`
instead of retry-looping.  Task payloads and results are pickled inside the
JSON — the same trust model as the other transports, so only expose the
endpoint (even proxied) to hosts you would also hand a pickle file to.
"""

from __future__ import annotations

import json
import socketserver
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .transport import NetworkWorkQueue, NetworkWorkQueueClient

__all__ = ["HttpWorkQueue", "HttpWorkQueueClient", "parse_http_url"]

#: Endpoints served (one per queue operation).
_OPS = ("claim", "heartbeat", "complete", "stop", "retire", "ping")


def parse_http_url(url: str) -> str:
    """Validate a coordinator base URL; returns it without a trailing slash.

    Accepts ``http://`` and ``https://`` (a TLS-terminating proxy in front
    of the coordinator) and an optional path prefix (a reverse proxy
    routing by path).
    """
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme not in ("http", "https"):
        raise ValueError(
            f"coordinator URL {url!r} must start with http:// or https://"
        )
    if not parsed.netloc:
        raise ValueError(f"coordinator URL {url!r} has no host")
    if parsed.query or parsed.fragment:
        # Operation paths are appended to the base URL, so a query/fragment
        # would end up *inside* the per-op endpoint ("...?team=a/claim") and
        # every request would 404 against the coordinator.
        raise ValueError(
            f"coordinator URL {url!r} must not contain a query string or "
            "fragment: per-operation paths (/claim, /heartbeat, ...) are "
            "appended to it"
        )
    return url.rstrip("/")


class _HttpHandler(BaseHTTPRequestHandler):
    # Self-contained request/responses with explicit Content-Length; the
    # connection closes after each exchange (single-request semantics).
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the per-request stderr log: coordinators poll many times
        a second, and request logs are where secrets go to leak."""

    def _run_segments(self) -> list[str] | None:
        """``["<id>", ...]`` after a ``/runs`` segment, ``[]`` for ``/runs``
        itself, ``None`` when the path has no run-registry shape (or no
        service is attached to answer it)."""
        if getattr(self.server, "service", None) is None:
            return None
        path = urllib.parse.urlsplit(self.path).path
        segments = [part for part in path.split("/") if part]
        if "runs" not in segments:
            return None
        return segments[segments.index("runs") + 1:]

    def _service_denied(self, request: dict[str, Any]) -> dict[str, Any] | None:
        """Auth check for service endpoints: the token may arrive in the
        JSON body or (for bodyless GET/DELETE) the ``X-Auth-Token`` header."""
        if "token" not in request:
            header = self.headers.get("X-Auth-Token")
            if header:
                request = {**request, "token": header}
        return self.server.work_queue._check_auth(request)

    def do_GET(self) -> None:  # pragma: no cover - exercised via the client
        # Read-only observability surfaces.  Like /ping they are served
        # without authentication: they expose queue *state* (depths, worker
        # ids, lease ages — never lease tokens or payloads) so dashboards
        # and CI probes can scrape an authenticated coordinator without a
        # shared secret, and without bumping the auth-denial counter.
        # The exception is /runs/<id>/results — results are tenant data.
        tail = self._run_segments()
        if tail is not None:
            service = self.server.service
            if not tail:
                status, response = service.list_runs()
            elif len(tail) == 2 and tail[1] == "status":
                status, response = service.run_status(tail[0])
            elif len(tail) == 2 and tail[1] == "results":
                denied = self._service_denied({})
                if denied is not None:
                    self._reply(401, denied)
                    return
                status, response = service.run_results(tail[0])
            else:
                status, response = 404, {
                    "ok": False,
                    "error": "GET /runs, /runs/<id>/status or "
                             "/runs/<id>/results",
                }
            self._reply(status, response)
            return
        path = self.path.rstrip("/")
        if path.endswith("/ping") or self.path in ("/", ""):
            self._reply(200, self.server.work_queue.ping_info())
        elif path.endswith("/metrics"):
            self._reply_text(200, self.server.work_queue.metrics_text())
        elif path.endswith("/status"):
            self._reply(200, self.server.work_queue.status())
        else:
            self._reply(404, {"ok": False, "error": "POST to /<op>"})

    def do_POST(self) -> None:  # pragma: no cover - exercised via the client
        op = self.path.rstrip("/").rsplit("/", 1)[-1]
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length)
            request = json.loads(body) if body else {}
            if not isinstance(request, dict):
                raise ValueError("request body must be a JSON object")
            response = self._dispatch_post(op, request)
        except Exception as exc:
            response = {"ok": False, "error": repr(exc)}
        if response.get("ok"):
            status = 200
        elif response.get("denied") == "auth":
            status = 401  # distinct: proxies/metrics see auth failures as such
        else:
            status = getattr(self, "_service_status", 400)
        self._reply(status, response)

    def _dispatch_post(
        self, op: str, request: dict[str, Any]
    ) -> dict[str, Any]:
        self._service_status = 400
        service = getattr(self.server, "service", None)
        if service is not None and op in ("runs", "rotate-token"):
            denied = self._service_denied(request)
            if denied is not None:
                return denied
            request.pop("token", None)  # never hand the secret downstream
            if op == "runs":
                self._service_status, response = service.submit(request)
            else:
                self._service_status, response = service.rotate_token(request)
            return response
        if op not in _OPS:
            # An unknown endpoint must not dispatch with whatever "op"
            # the body smuggled in.
            return {"ok": False, "error": f"unknown endpoint {op!r}"}
        request["op"] = op
        return self.server.work_queue._handle(request)

    def do_DELETE(self) -> None:  # pragma: no cover - exercised via the client
        tail = self._run_segments()
        if tail is None or len(tail) != 1:
            self._reply(404, {"ok": False, "error": "DELETE /runs/<id>"})
            return
        denied = self._service_denied({})
        if denied is not None:
            self._reply(401, denied)
            return
        status, response = self.server.service.cancel(tail[0])
        self._reply(status, response)

    def _reply(self, status: int, response: dict[str, Any]) -> None:
        self._send_blob(
            status, "application/json", json.dumps(response).encode("ascii")
        )

    def _reply_text(self, status: int, text: str) -> None:
        # The content type Prometheus scrapers expect for text exposition.
        self._send_blob(
            status, "text/plain; version=0.0.4", text.encode("utf-8")
        )

    def _send_blob(self, status: int, content_type: str, blob: bytes) -> None:
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(blob)
        except OSError:
            pass  # client went away mid-response; its next poll retries
        self.close_connection = True


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    work_queue: NetworkWorkQueue
    #: A CampaignService routes /runs requests here; None on plain
    #: single-campaign coordinators (the endpoints then 404).
    service: Any = None


class HttpWorkQueue(NetworkWorkQueue):
    """Coordinator-hosted HTTP work queue (server side of the transport).

    Constructing the queue binds and starts the server — ``port=0`` picks
    an ephemeral port, published via :attr:`address`/:attr:`url`.  The
    object is a full :class:`~repro.campaign.workqueue.WorkQueue` for the
    coordinator; remote workers reach the worker-side half through
    :class:`HttpWorkQueueClient` (directly or through any HTTP proxy).
    """

    def _make_server(self, host: str, port: int) -> socketserver.BaseServer:
        return _HttpServer((host, port), _HttpHandler)

    @property
    def url(self) -> str:
        """Base URL workers on this host can reach the server under."""
        host, port = self.address
        if host in ("", "0.0.0.0", "::"):
            host = "127.0.0.1"
        return f"http://{host}:{port}"


def _is_loopback(host: str | None) -> bool:
    if host is None:
        return False
    return host == "localhost" or host.startswith("127.") or host == "::1"


class HttpWorkQueueClient(NetworkWorkQueueClient):
    """Worker-side :class:`~repro.campaign.workqueue.WorkQueue` over HTTP:
    one POST per operation against a coordinator (or proxy) base URL."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        auth_token: str | None = None,
    ) -> None:
        super().__init__(timeout=timeout, auth_token=auth_token)
        self._base_url = parse_http_url(base_url)
        if _is_loopback(urllib.parse.urlsplit(self._base_url).hostname):
            # A loopback coordinator (notably: the one that spawned this
            # worker) must be reached directly — honouring an http_proxy
            # environment variable would route 127.0.0.1 through a proxy
            # that cannot reach it and silently hang the campaign as the
            # failures degrade into idle polling.  Non-loopback URLs keep
            # the default handlers, so workers behind forward proxies
            # still traverse them.
            self._opener = urllib.request.build_opener(
                urllib.request.ProxyHandler({})
            )
        else:
            self._opener = urllib.request.build_opener()

    def _send(self, message: dict[str, Any]) -> dict[str, Any] | None:
        payload = dict(message)
        op = payload.pop("op")
        request = urllib.request.Request(
            f"{self._base_url}/{op}",
            data=json.dumps(payload).encode("ascii"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with self._opener.open(request, timeout=self._timeout) as reply:
                body = reply.read()
        except urllib.error.HTTPError as exc:
            # Non-2xx still carries the JSON response (e.g. 401 with
            # denied: "auth"); an HTML error page from a proxy in front
            # fails the JSON parse below and degrades like any outage.
            try:
                body = exc.read()
            except OSError:
                return None
        except (OSError, ValueError):
            return None
        try:
            return json.loads(body) if body else None
        except ValueError:
            return None

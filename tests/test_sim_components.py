"""Tests for the recorder, metrics, scenarios, system simulation and analysis helpers."""

import numpy as np
import pytest

from repro.analysis import ascii_plot, extract_axes, format_overhead_table, format_table, oscillation_amplitude
from repro.attacks import ControllerKillAttack, MemoryBandwidthAttack, UdpFloodAttack
from repro.sim import (
    ControllerPlacement,
    FlightRecorder,
    FlightSample,
    FlightScenario,
    SystemSimulation,
    compute_metrics,
)


def make_sample(time, position, setpoint=(0.0, 0.0, -1.0), source="complex", crashed=False):
    return FlightSample(
        time=time,
        position=np.asarray(position, dtype=float),
        setpoint=np.asarray(setpoint, dtype=float),
        velocity=np.zeros(3),
        roll=0.0,
        pitch=0.0,
        yaw=0.0,
        active_source=source,
        crashed=crashed,
    )


def synthetic_recording(duration=20.0, rate=10.0, deviation=0.0, crash_at=None, switch_at=None):
    recorder = FlightRecorder(sample_rate_hz=rate)
    steps = int(duration * rate)
    for index in range(steps):
        t = index / rate
        source = "safety" if switch_at is not None and t >= switch_at else "complex"
        crashed = crash_at is not None and t >= crash_at
        position = np.array([deviation * np.sin(t), 0.0, -1.0])
        recorder.maybe_record(make_sample(t, position, source=source, crashed=crashed))
    return recorder


class TestFlightRecorder:
    def test_decimation(self):
        recorder = FlightRecorder(sample_rate_hz=10.0)
        for index in range(1000):
            recorder.maybe_record(make_sample(index * 0.001, (0.0, 0.0, -1.0)))
        assert len(recorder) == pytest.approx(10, abs=1)

    def test_axis_extraction_flips_z(self):
        recorder = synthetic_recording(duration=2.0)
        times, values, setpoints = recorder.axis("z")
        assert np.allclose(values, 1.0)
        assert np.allclose(setpoints, 1.0)

    def test_switch_time_detection(self):
        recorder = synthetic_recording(switch_at=5.0)
        assert recorder.switch_time() == pytest.approx(5.0, abs=0.2)
        assert synthetic_recording().switch_time() is None

    def test_crash_time_detection(self):
        recorder = synthetic_recording(crash_at=7.0)
        assert recorder.crash_time() == pytest.approx(7.0, abs=0.2)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FlightRecorder(sample_rate_hz=0.0)

    def test_array_accessors_shapes(self):
        recorder = synthetic_recording(duration=3.0)
        assert recorder.positions().shape == (len(recorder), 3)
        assert recorder.attitudes().shape == (len(recorder), 3)
        assert len(recorder.sources()) == len(recorder)


class TestFlightMetrics:
    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(FlightRecorder())

    def test_stable_flight_metrics(self):
        metrics = compute_metrics(synthetic_recording(deviation=0.01))
        assert not metrics.crashed
        assert metrics.recovered
        assert metrics.max_deviation < 0.05

    def test_crash_reported(self):
        metrics = compute_metrics(synthetic_recording(crash_at=8.0))
        assert metrics.crashed
        assert metrics.crash_time == pytest.approx(8.0, abs=0.2)
        assert not metrics.recovered

    def test_large_persistent_deviation_is_not_recovered(self):
        metrics = compute_metrics(synthetic_recording(deviation=2.0))
        assert not metrics.recovered
        assert metrics.max_deviation > 1.0

    def test_event_time_restricts_after_metrics(self):
        recorder = FlightRecorder(sample_rate_hz=10.0)
        for index in range(200):
            t = index / 10.0
            deviation = 0.0 if t < 10.0 else 1.0
            recorder.maybe_record(make_sample(t, (deviation, 0.0, -1.0)))
        metrics = compute_metrics(recorder, event_time=10.0)
        assert metrics.max_deviation_after == pytest.approx(1.0, abs=0.01)
        assert metrics.rms_error_after > metrics.rms_error / 2.0

    def test_switch_time_reported(self):
        metrics = compute_metrics(synthetic_recording(switch_at=4.0))
        assert metrics.switched_to_safety
        assert metrics.switch_time == pytest.approx(4.0, abs=0.2)

    def test_summary_mentions_crash(self):
        metrics = compute_metrics(synthetic_recording(crash_at=5.0))
        assert "CRASHED" in metrics.summary()


class TestScenarios:
    def test_figure4_configuration(self):
        scenario = FlightScenario.figure4()
        assert scenario.controller_placement == ControllerPlacement.HOST
        assert not scenario.config.memory.enabled
        assert isinstance(scenario.attacks[0], MemoryBandwidthAttack)

    def test_figure5_configuration(self):
        scenario = FlightScenario.figure5()
        assert scenario.config.memory.enabled
        assert scenario.controller_placement == ControllerPlacement.HOST

    def test_figure6_configuration(self):
        scenario = FlightScenario.figure6()
        assert scenario.controller_placement == ControllerPlacement.CONTAINER
        assert isinstance(scenario.attacks[0], ControllerKillAttack)
        assert scenario.config.monitor.enabled

    def test_figure7_configuration(self):
        scenario = FlightScenario.figure7()
        assert isinstance(scenario.attacks[0], UdpFloodAttack)
        assert scenario.config.communication.iptables_enabled

    def test_first_attack_time(self):
        assert FlightScenario.baseline().first_attack_time() is None
        assert FlightScenario.figure6().first_attack_time() == 12.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightScenario(duration=0.0)
        with pytest.raises(ValueError):
            FlightScenario(controller_placement="cloud")

    def test_validation_geofence_radius(self):
        with pytest.raises(ValueError, match="geofence_radius must be positive"):
            FlightScenario(geofence_radius=0.0)
        with pytest.raises(ValueError, match="geofence_radius must be positive"):
            FlightScenario(geofence_radius=-1.0)

    def test_validation_initial_altitude(self):
        with pytest.raises(ValueError, match="initial_altitude must be non-negative"):
            FlightScenario(initial_altitude=-0.1)
        # Zero altitude (on the ground) is allowed.
        assert FlightScenario(initial_altitude=0.0).initial_altitude == 0.0

    def test_validation_record_hz(self):
        with pytest.raises(ValueError, match="record_hz must be positive"):
            FlightScenario(record_hz=0.0)

    def test_with_helpers(self):
        scenario = FlightScenario.baseline().with_name("renamed")
        assert scenario.name == "renamed"
        scenario = scenario.with_attacks(ControllerKillAttack(start_time=3.0))
        assert scenario.attacks[0].start_time == 3.0
        assert scenario.with_seed(42).seed == 42
        shifted = scenario.with_attack_start(1.5)
        assert shifted.attacks[0].start_time == 1.5


class TestSystemSimulation:
    def test_native_idle_rates_match_table2_band(self):
        simulation = SystemSimulation()
        idle = simulation.run(5.0)
        assert idle[0] == pytest.approx(0.95, abs=0.02)
        assert all(rate == pytest.approx(0.99, abs=0.02) for rate in idle[1:])

    def test_container_overhead_is_small(self):
        simulation = SystemSimulation()
        simulation.add_container()
        idle = simulation.run(5.0)
        assert min(idle) > 0.93

    def test_vm_overhead_is_large(self):
        simulation = SystemSimulation()
        simulation.add_vm()
        idle = simulation.run(5.0)
        assert min(idle) < 0.85
        assert np.mean(idle) < 0.90

    def test_vm_case_is_worse_than_container_case(self):
        container_sim = SystemSimulation()
        container_sim.add_container()
        vm_sim = SystemSimulation()
        vm_sim.add_vm()
        assert np.mean(vm_sim.run(5.0)) < np.mean(container_sim.run(5.0))


class TestAnalysisHelpers:
    def test_extract_axes_names(self):
        recorder = synthetic_recording(duration=2.0)
        axes = extract_axes(recorder)
        assert [axis.name for axis in axes] == ["X", "Y", "Z"]

    def test_oscillation_amplitude(self):
        recorder = synthetic_recording(duration=10.0, deviation=0.5)
        x_axis = extract_axes(recorder)[0]
        amplitude = oscillation_amplitude(x_axis)
        assert amplitude == pytest.approx(1.0, abs=0.15)

    def test_oscillation_amplitude_window(self):
        recorder = synthetic_recording(duration=10.0, deviation=0.5)
        x_axis = extract_axes(recorder)[0]
        assert oscillation_amplitude(x_axis, start=100.0) == 0.0

    def test_ascii_plot_contains_series_markers(self):
        recorder = synthetic_recording(duration=5.0, deviation=0.3)
        plot = ascii_plot(extract_axes(recorder)[0])
        assert "*" in plot
        assert "X position" in plot

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]

    def test_format_overhead_table(self):
        text = format_overhead_table({"native": [0.95, 0.99], "vm": [0.86, 0.83]})
        assert "CPU0" in text and "native" in text and "0.86" in text

"""iptables-style packet rate limiting.

The paper limits the packet rate of the docker0 interface with iptables to
"reduce damage caused by DoS attacks".  The standard iptables ``limit`` match
is a token bucket: packets are accepted at a sustained rate with a configurable
burst, everything above that is dropped.  This module reimplements that
semantics for the simulated network stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RateLimitRule", "TokenBucket", "IptablesFirewall"]


class TokenBucket:
    """Token bucket with a sustained rate and a burst capacity."""

    def __init__(self, rate_per_second: float, burst: int) -> None:
        if rate_per_second <= 0.0:
            raise ValueError("rate_per_second must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate = float(rate_per_second)
        self.burst = int(burst)
        self._tokens = float(burst)
        self._last_update = 0.0

    def allow(self, now: float) -> bool:
        """Return True and consume a token if a packet may pass at ``now``."""
        elapsed = max(0.0, now - self._last_update)
        self._last_update = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class RateLimitRule:
    """One firewall rule limiting traffic toward a destination port.

    ``None`` fields act as wildcards, mirroring iptables matches.
    """

    destination_port: int | None = None
    source_namespace: str | None = None
    rate_per_second: float = 1000.0
    burst: int = 100

    def matches(self, source_namespace: str, destination_port: int) -> bool:
        """True when this rule applies to the packet."""
        if self.destination_port is not None and destination_port != self.destination_port:
            return False
        if self.source_namespace is not None and source_namespace != self.source_namespace:
            return False
        return True


@dataclass
class _RuleState:
    rule: RateLimitRule
    bucket: TokenBucket
    accepted: int = 0
    dropped: int = 0


class IptablesFirewall:
    """Ordered rule chain applied to packets crossing the docker0 bridge."""

    def __init__(self, rules: list[RateLimitRule] | None = None) -> None:
        self._states: list[_RuleState] = []
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule: RateLimitRule) -> None:
        """Append a rule to the chain."""
        self._states.append(
            _RuleState(rule=rule, bucket=TokenBucket(rule.rate_per_second, rule.burst))
        )

    @property
    def rules(self) -> list[RateLimitRule]:
        """Rules currently installed, in evaluation order."""
        return [state.rule for state in self._states]

    def accepts(self, now: float, source_namespace: str, destination_port: int) -> bool:
        """Evaluate the chain for one packet; the first matching rule decides."""
        for state in self._states:
            if state.rule.matches(source_namespace, destination_port):
                if state.bucket.allow(now):
                    state.accepted += 1
                    return True
                state.dropped += 1
                return False
        return True

    def counters(self) -> dict[int, tuple[int, int]]:
        """Per-rule (accepted, dropped) counters keyed by rule index."""
        return {index: (state.accepted, state.dropped) for index, state in enumerate(self._states)}

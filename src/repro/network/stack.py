"""Virtual network stack connecting the container and host namespaces.

The CCE lives in a sandboxed, user-defined Docker network: it has no Internet
access and can reach the host only through the docker0 bridge on defined UDP
ports (Section IV-B/IV-D).  This module models:

* network namespaces (one per control environment),
* port bindings within a namespace,
* the bridge between the two namespaces with a configurable one-way latency,
* an :class:`~repro.network.iptables.IptablesFirewall` applied to traffic
  crossing the bridge,
* per-namespace reachability (the container can only reach the host, not the
  outside world).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .iptables import IptablesFirewall
from .udp import Datagram, SocketAddress, UdpEndpoint

__all__ = ["NetworkStack", "NetworkStats", "HOST_NAMESPACE", "CONTAINER_NAMESPACE"]

#: Namespace name of the host control environment.
HOST_NAMESPACE = "host"
#: Namespace name of the container control environment.
CONTAINER_NAMESPACE = "container"


@dataclass
class NetworkStats:
    """Aggregate counters for traffic crossing the stack."""

    sent: int = 0
    delivered: int = 0
    dropped_firewall: int = 0
    dropped_no_listener: int = 0
    dropped_unreachable: int = 0
    bytes_sent: int = 0


class NetworkStack:
    """Routes datagrams between namespaces through the docker0 bridge."""

    def __init__(
        self,
        latency: float = 0.0002,
        firewall: IptablesFirewall | None = None,
        jitter: float = 0.0,
    ) -> None:
        if latency < 0.0 or jitter < 0.0:
            raise ValueError("latency and jitter must be non-negative")
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.firewall = firewall or IptablesFirewall()
        self.stats = NetworkStats()
        self._endpoints: dict[SocketAddress, UdpEndpoint] = {}
        #: Which namespaces each namespace may reach.  The container may only
        #: reach the host; the host may reach the container.
        self._reachability: dict[str, set[str]] = {
            HOST_NAMESPACE: {HOST_NAMESPACE, CONTAINER_NAMESPACE},
            CONTAINER_NAMESPACE: {CONTAINER_NAMESPACE, HOST_NAMESPACE},
        }

    # -- namespace / binding management -----------------------------------------

    def add_namespace(self, name: str, reachable: set[str] | None = None) -> None:
        """Register an additional namespace with an explicit reachability set."""
        self._reachability[name] = {name} | (reachable or set())

    def bind(self, namespace: str, port: int, queue_capacity: int = 256) -> UdpEndpoint:
        """Bind a UDP endpoint in ``namespace`` on ``port``."""
        if namespace not in self._reachability:
            raise ValueError(f"unknown namespace {namespace!r}")
        address = SocketAddress(namespace=namespace, port=int(port))
        if address in self._endpoints:
            raise ValueError(f"port {port} already bound in namespace {namespace!r}")
        endpoint = UdpEndpoint(address, queue_capacity=queue_capacity)
        self._endpoints[address] = endpoint
        return endpoint

    def unbind(self, endpoint: UdpEndpoint) -> None:
        """Remove a binding (e.g. when the receiving thread is killed)."""
        self._endpoints.pop(endpoint.address, None)

    def endpoint(self, namespace: str, port: int) -> UdpEndpoint | None:
        """Return the endpoint bound at (namespace, port), if any."""
        return self._endpoints.get(SocketAddress(namespace=namespace, port=int(port)))

    # -- datagram transfer -------------------------------------------------------

    def send(
        self,
        now: float,
        payload: bytes,
        source_namespace: str,
        source_port: int,
        destination_namespace: str,
        destination_port: int,
    ) -> bool:
        """Send one datagram; returns True if it was queued at the receiver."""
        self.stats.sent += 1
        self.stats.bytes_sent += len(payload)

        reachable = self._reachability.get(source_namespace, set())
        if destination_namespace not in reachable:
            self.stats.dropped_unreachable += 1
            return False

        crosses_bridge = source_namespace != destination_namespace
        if crosses_bridge and not self.firewall.accepts(now, source_namespace, destination_port):
            self.stats.dropped_firewall += 1
            return False

        destination = SocketAddress(namespace=destination_namespace, port=int(destination_port))
        endpoint = self._endpoints.get(destination)
        if endpoint is None:
            self.stats.dropped_no_listener += 1
            return False

        latency = self.latency if crosses_bridge else 0.0
        datagram = Datagram(
            payload=payload,
            source=SocketAddress(namespace=source_namespace, port=int(source_port)),
            destination=destination,
            sent_at=now,
            deliver_at=now + latency,
        )
        accepted = endpoint.enqueue(datagram)
        if accepted:
            self.stats.delivered += 1
        return accepted

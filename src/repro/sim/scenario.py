"""Scenario descriptions for the flight co-simulation.

A scenario bundles everything that varies between the paper's experiments:
the mission (hover setpoint and duration), where the complex controller runs,
which attacks are launched and which protections are enabled.  The
``figure4``/``figure5``/``figure6``/``figure7`` constructors reproduce the
four attack experiments of Section V.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..attacks.base import Attack
from ..attacks.controller_kill import ControllerKillAttack
from ..attacks.memory_dos import MemoryBandwidthAttack
from ..attacks.udp_flood import UdpFloodAttack
from ..control.setpoints import PositionSetpoint
from ..core.config import ContainerDroneConfig

__all__ = ["ControllerPlacement", "FlightScenario"]


class ControllerPlacement:
    """Where the complex controller executes."""

    CONTAINER = "container"
    HOST = "host"


def _default_setpoint() -> PositionSetpoint:
    return PositionSetpoint.hover_at(0.0, 0.5, 1.0)


@dataclass(frozen=True)
class FlightScenario:
    """One flight experiment.

    Attributes
    ----------
    name:
        Scenario identifier used in reports.
    duration:
        Flight duration [s] (the paper's traces span 30 s).
    setpoint:
        Hover setpoint for position-control mode.
    controller_placement:
        ``"container"`` runs the complex controller inside the CCE (the
        framework's normal configuration, used by the Figure 6/7 experiments);
        ``"host"`` runs it on the HCE with only the attacker inside the
        container (the Figure 4/5 memory-DoS configuration).
    attacks:
        Attacks launched during the flight.
    config:
        ContainerDrone framework configuration (protections and thresholds).
    physics_dt:
        Physics/scheduler step [s].
    seed:
        Seed for all stochastic components.
    record_hz:
        Telemetry decimation rate [Hz].  The default matches the paper's
        50 Hz log rate; campaign sweeps may lower it to make hundreds of
        flights affordable (fewer samples recorded and post-processed).
        Note that metrics are derived from the decimated recording, so a
        coarser rate also coarsens them (event times quantise to the sample
        period, deviation peaks between samples are missed) — compare
        metrics across flights only at equal ``record_hz``, and keep the
        default when comparing against the paper's 50 Hz baselines.
    """

    name: str = "hover"
    duration: float = 30.0
    setpoint: PositionSetpoint = field(default_factory=_default_setpoint)
    controller_placement: str = ControllerPlacement.CONTAINER
    attacks: tuple[Attack, ...] = ()
    config: ContainerDroneConfig = field(default_factory=ContainerDroneConfig)
    physics_dt: float = 0.001
    seed: int = 2019
    #: Deviation from the setpoint at which the flight counts as a crash
    #: (the drone has left the motion-capture volume / hit the lab wall) [m].
    geofence_radius: float = 6.0
    #: Starting altitude [m]; ``None`` (the default) starts the flight at the
    #: setpoint altitude, a non-``None`` value starts it there instead (the
    #: drone then has to climb/descend to the setpoint).
    initial_altitude: float | None = None
    #: Telemetry recording rate [Hz] (see class docstring).
    record_hz: float = 50.0

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ValueError("duration must be positive")
        if self.physics_dt <= 0.0:
            raise ValueError("physics_dt must be positive")
        if self.geofence_radius <= 0.0:
            raise ValueError("geofence_radius must be positive")
        if self.initial_altitude is not None and self.initial_altitude < 0.0:
            raise ValueError("initial_altitude must be non-negative")
        if self.record_hz <= 0.0:
            raise ValueError("record_hz must be positive")
        if self.controller_placement not in (
            ControllerPlacement.CONTAINER,
            ControllerPlacement.HOST,
        ):
            raise ValueError(f"unknown controller placement {self.controller_placement!r}")

    # -- canonical scenarios -----------------------------------------------------

    @classmethod
    def baseline(cls, duration: float = 30.0, **kwargs) -> "FlightScenario":
        """Undisturbed hover with every protection enabled."""
        return cls(name="baseline-hover", duration=duration, **kwargs)

    @classmethod
    def figure4(cls, attack_start: float = 10.0, duration: float = 30.0) -> "FlightScenario":
        """Memory-bandwidth DoS with MemGuard disabled: the drone crashes.

        As in the paper, the Bandwidth attacker is the only process inside the
        container and the flight controller runs on the host, so the
        experiment isolates the memory protection: the Simplex monitor is not
        part of this configuration and cannot save the drone.
        """
        return cls(
            name="fig4-memdos-no-memguard",
            duration=duration,
            controller_placement=ControllerPlacement.HOST,
            attacks=(MemoryBandwidthAttack(start_time=attack_start),),
            config=ContainerDroneConfig().without_memguard().without_monitor(),
        )

    @classmethod
    def figure5(cls, attack_start: float = 10.0, duration: float = 30.0) -> "FlightScenario":
        """Memory-bandwidth DoS with MemGuard enabled: oscillates but stable."""
        return cls(
            name="fig5-memdos-with-memguard",
            duration=duration,
            controller_placement=ControllerPlacement.HOST,
            attacks=(MemoryBandwidthAttack(start_time=attack_start),),
            config=ContainerDroneConfig().without_monitor(),
        )

    @classmethod
    def figure6(cls, kill_time: float = 12.0, duration: float = 30.0) -> "FlightScenario":
        """Complex controller killed mid-flight: the monitor switches to safety."""
        return cls(
            name="fig6-controller-kill",
            duration=duration,
            controller_placement=ControllerPlacement.CONTAINER,
            attacks=(ControllerKillAttack(start_time=kill_time),),
            config=ContainerDroneConfig(),
        )

    @classmethod
    def figure7(cls, attack_start: float = 8.0, duration: float = 30.0) -> "FlightScenario":
        """UDP flood on the HCE motor port: attitude rule triggers recovery."""
        return cls(
            name="fig7-udp-flood",
            duration=duration,
            controller_placement=ControllerPlacement.CONTAINER,
            attacks=(UdpFloodAttack(start_time=attack_start),),
            config=ContainerDroneConfig(),
        )

    # -- variants -----------------------------------------------------------------

    def with_config(self, config: ContainerDroneConfig) -> "FlightScenario":
        """Copy of the scenario with a different framework configuration."""
        return replace(self, config=config)

    def with_attacks(self, *attacks: Attack) -> "FlightScenario":
        """Copy of the scenario with a different attack list."""
        return replace(self, attacks=tuple(attacks))

    def with_name(self, name: str) -> "FlightScenario":
        """Copy of the scenario under a different name."""
        return replace(self, name=name)

    def with_seed(self, seed: int) -> "FlightScenario":
        """Copy of the scenario with a different random seed."""
        return replace(self, seed=int(seed))

    def with_attack_start(self, start_time: float) -> "FlightScenario":
        """Copy of the scenario with every attack rescheduled to ``start_time``."""
        return replace(
            self,
            attacks=tuple(attack.with_start_time(start_time) for attack in self.attacks),
        )

    def first_attack_time(self) -> float | None:
        """Start time of the earliest attack, if any."""
        if not self.attacks:
            return None
        return min(attack.start_time for attack in self.attacks)

"""Tests for the simulated UDP stack, iptables rate limiting and namespaces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    CONTAINER_NAMESPACE,
    HOST_NAMESPACE,
    IptablesFirewall,
    NetworkStack,
    RateLimitRule,
    SocketAddress,
    TokenBucket,
    UdpEndpoint,
)
from repro.network.udp import Datagram


def make_datagram(deliver_at: float = 0.0, size: int = 10) -> Datagram:
    return Datagram(
        payload=b"x" * size,
        source=SocketAddress(CONTAINER_NAMESPACE, 1000),
        destination=SocketAddress(HOST_NAMESPACE, 14600),
        sent_at=deliver_at,
        deliver_at=deliver_at,
    )


class TestUdpEndpoint:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            UdpEndpoint(SocketAddress(HOST_NAMESPACE, 1), queue_capacity=0)

    def test_enqueue_and_receive(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600))
        assert endpoint.enqueue(make_datagram(0.0))
        received = endpoint.receive(1.0)
        assert len(received) == 1
        assert endpoint.stats.delivered == 1

    def test_receive_respects_delivery_time(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600))
        endpoint.enqueue(make_datagram(deliver_at=5.0))
        assert endpoint.receive(1.0) == []
        assert len(endpoint.receive(5.0)) == 1

    def test_drop_tail_when_full(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600), queue_capacity=2)
        assert endpoint.enqueue(make_datagram())
        assert endpoint.enqueue(make_datagram())
        assert not endpoint.enqueue(make_datagram())
        assert endpoint.stats.dropped_queue_full == 1

    def test_receive_batch_limit(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600))
        for _ in range(10):
            endpoint.enqueue(make_datagram())
        assert len(endpoint.receive(1.0, max_datagrams=4)) == 4
        assert endpoint.queue_depth == 6

    def test_flush_discards_everything(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600))
        for _ in range(5):
            endpoint.enqueue(make_datagram())
        assert endpoint.flush() == 5
        assert endpoint.queue_depth == 0

    def test_byte_counters(self):
        endpoint = UdpEndpoint(SocketAddress(HOST_NAMESPACE, 14600))
        endpoint.enqueue(make_datagram(size=25))
        endpoint.receive(1.0)
        assert endpoint.stats.bytes_received == 25
        assert endpoint.stats.bytes_delivered == 25


class TestTokenBucket:
    def test_burst_allows_initial_packets(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=5)
        assert all(bucket.allow(0.0) for _ in range(5))
        assert not bucket.allow(0.0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate_per_second=10.0, burst=1)
        assert bucket.allow(0.0)
        assert not bucket.allow(0.01)
        assert bucket.allow(0.2)

    def test_sustained_rate_is_enforced(self):
        bucket = TokenBucket(rate_per_second=100.0, burst=10)
        accepted = sum(1 for step in range(10000) if bucket.allow(step * 0.001))
        # 10 s at 100 pkt/s plus the initial burst.
        assert 900 <= accepted <= 1200

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 10)
        with pytest.raises(ValueError):
            TokenBucket(10.0, 0)

    @given(rate=st.floats(min_value=1.0, max_value=1000.0),
           burst=st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_acceptance_never_exceeds_rate_plus_burst(self, rate, burst):
        bucket = TokenBucket(rate, burst)
        duration = 2.0
        accepted = sum(1 for step in range(2000) if bucket.allow(step * 0.001))
        assert accepted <= rate * duration + burst + 1


class TestIptablesFirewall:
    def test_rule_matching_wildcards(self):
        rule = RateLimitRule(destination_port=None, source_namespace=None)
        assert rule.matches("anything", 1234)

    def test_rule_matching_specific(self):
        rule = RateLimitRule(destination_port=14600, source_namespace=CONTAINER_NAMESPACE)
        assert rule.matches(CONTAINER_NAMESPACE, 14600)
        assert not rule.matches(HOST_NAMESPACE, 14600)
        assert not rule.matches(CONTAINER_NAMESPACE, 14660)

    def test_no_rules_accepts_everything(self):
        firewall = IptablesFirewall()
        assert firewall.accepts(0.0, CONTAINER_NAMESPACE, 14600)

    def test_rate_limit_drops_flood(self):
        firewall = IptablesFirewall([RateLimitRule(destination_port=14600,
                                                   rate_per_second=100.0, burst=10)])
        accepted = sum(
            1 for index in range(1000) if firewall.accepts(index * 0.0001, CONTAINER_NAMESPACE, 14600)
        )
        assert accepted < 50

    def test_unmatched_port_not_limited(self):
        firewall = IptablesFirewall([RateLimitRule(destination_port=14600,
                                                   rate_per_second=1.0, burst=1)])
        accepted = sum(
            1 for index in range(100) if firewall.accepts(index * 0.001, CONTAINER_NAMESPACE, 9999)
        )
        assert accepted == 100

    def test_counters_track_accept_and_drop(self):
        firewall = IptablesFirewall([RateLimitRule(rate_per_second=10.0, burst=1)])
        firewall.accepts(0.0, CONTAINER_NAMESPACE, 1)
        firewall.accepts(0.0, CONTAINER_NAMESPACE, 1)
        accepted, dropped = firewall.counters()[0]
        assert accepted == 1
        assert dropped == 1


class TestNetworkStack:
    def test_bind_and_send(self):
        stack = NetworkStack(latency=0.0)
        endpoint = stack.bind(HOST_NAMESPACE, 14600)
        assert stack.send(0.0, b"abc", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert endpoint.queue_depth == 1

    def test_send_to_unbound_port_dropped(self):
        stack = NetworkStack()
        assert not stack.send(0.0, b"abc", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert stack.stats.dropped_no_listener == 1

    def test_duplicate_bind_rejected(self):
        stack = NetworkStack()
        stack.bind(HOST_NAMESPACE, 14600)
        with pytest.raises(ValueError):
            stack.bind(HOST_NAMESPACE, 14600)

    def test_unknown_namespace_rejected(self):
        stack = NetworkStack()
        with pytest.raises(ValueError):
            stack.bind("internet", 80)

    def test_container_cannot_reach_unknown_namespace(self):
        stack = NetworkStack()
        stack.add_namespace("internet", reachable=set())
        stack.bind("internet", 80)
        assert not stack.send(0.0, b"exfil", CONTAINER_NAMESPACE, 5555, "internet", 80)
        assert stack.stats.dropped_unreachable == 1

    def test_bridge_latency_applied_cross_namespace(self):
        stack = NetworkStack(latency=0.01)
        endpoint = stack.bind(HOST_NAMESPACE, 14600)
        stack.send(0.0, b"abc", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert endpoint.receive(0.005) == []
        assert len(endpoint.receive(0.02)) == 1

    def test_same_namespace_has_no_bridge_latency(self):
        stack = NetworkStack(latency=0.01)
        endpoint = stack.bind(HOST_NAMESPACE, 15000)
        stack.send(0.0, b"abc", HOST_NAMESPACE, 5555, HOST_NAMESPACE, 15000)
        assert len(endpoint.receive(0.0)) == 1

    def test_firewall_applied_only_across_bridge(self):
        firewall = IptablesFirewall([RateLimitRule(destination_port=14600,
                                                   rate_per_second=1.0, burst=1)])
        stack = NetworkStack(latency=0.0, firewall=firewall)
        endpoint = stack.bind(HOST_NAMESPACE, 14600)
        assert stack.send(0.0, b"1", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert not stack.send(0.0, b"2", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert stack.stats.dropped_firewall == 1
        # Host-local traffic to the same port bypasses the docker0 firewall.
        assert stack.send(0.0, b"3", HOST_NAMESPACE, 5556, HOST_NAMESPACE, 14600)
        assert endpoint.queue_depth == 2

    def test_unbind_stops_delivery(self):
        stack = NetworkStack()
        endpoint = stack.bind(HOST_NAMESPACE, 14600)
        stack.unbind(endpoint)
        assert not stack.send(0.0, b"abc", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)

    def test_stats_bytes_counted(self):
        stack = NetworkStack()
        stack.bind(HOST_NAMESPACE, 14600)
        stack.send(0.0, b"abcd", CONTAINER_NAMESPACE, 5555, HOST_NAMESPACE, 14600)
        assert stack.stats.bytes_sent == 4

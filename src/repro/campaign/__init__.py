"""Scenario-campaign engine: sweep grids fanned out over worker processes.

The paper evaluates four hand-picked experiments one at a time; this package
turns the single-shot ``FlightScenario -> run_scenario`` path into a fleet
runner.  Execution is delegated to pluggable
:class:`~repro.campaign.backends.ExecutorBackend`s and results can be cached
in a :class:`~repro.store.CampaignStore`.  See ``docs/campaigns.md`` for the
sweep-grid syntax, caching/resume semantics and examples; campaigns are also
runnable from spec files via ``python -m repro.campaign``.

The package logs under per-module child loggers (``repro.campaign.runner``,
``repro.campaign.backends``, ``repro.campaign.workqueue``, ...) of the
``repro.campaign`` hierarchy; the :class:`~logging.NullHandler` below keeps
a handler-less embedding application from getting "No handlers could be
found" noise while letting any configured handler see everything.
"""

import logging as _logging

from .backends import (
    BatchBackend,
    DistributedBackend,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    ServiceBackend,
    get_backend,
    spawn_worker,
)
from .grid import AxisApplier, GridVariant, ScenarioGrid, register_axis, resolve_applier
from .results import CampaignCell, CampaignResult, VariantOutcome
from .runner import CampaignRunner, run_campaign, trajectory_arrays
from .transport import SocketWorkQueue, SocketWorkQueueClient
from .transport_http import HttpWorkQueue, HttpWorkQueueClient
from .workqueue import (
    PROTOCOL_VERSION,
    FileWorkQueue,
    WorkQueue,
    WorkQueueAuthError,
    WorkQueueProtocolError,
    resolve_auth_tokens,
)

_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "PROTOCOL_VERSION",
    "AxisApplier",
    "BatchBackend",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "DistributedBackend",
    "ExecutorBackend",
    "FileWorkQueue",
    "GridVariant",
    "HttpWorkQueue",
    "HttpWorkQueueClient",
    "ProcessPoolBackend",
    "ScenarioGrid",
    "SerialBackend",
    "ServiceBackend",
    "SocketWorkQueue",
    "SocketWorkQueueClient",
    "VariantOutcome",
    "WorkQueue",
    "WorkQueueAuthError",
    "WorkQueueProtocolError",
    "get_backend",
    "register_axis",
    "resolve_applier",
    "resolve_auth_tokens",
    "run_campaign",
    "spawn_worker",
    "trajectory_arrays",
]

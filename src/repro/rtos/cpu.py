"""CPU core model: a FIFO-priority ready queue plus utilisation accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from .task import Job

__all__ = ["CpuCore"]


@dataclass
class CpuCore:
    """One CPU core with a fixed-priority FIFO ready queue.

    Higher ``priority`` values run first (matching SCHED_FIFO numeric
    priorities); ties are broken by release time, then by insertion order.
    """

    index: int
    ready: list[Job] = field(default_factory=list)
    busy_time: float = 0.0
    throttled_time: float = 0.0
    elapsed_time: float = 0.0
    _insertion_counter: int = 0

    def enqueue(self, job: Job) -> None:
        """Add a released job to the ready queue."""
        self._insertion_counter += 1
        # Store a sort key with the job so ordering is stable and cheap.
        job._sort_key = (-job.task.config.priority, job.release_time, self._insertion_counter)  # type: ignore[attr-defined]
        self.ready.append(job)
        self.ready.sort(key=lambda item: item._sort_key)  # type: ignore[attr-defined]

    def current_job(self) -> Job | None:
        """The job that would execute next, or ``None`` when idle."""
        return self.ready[0] if self.ready else None

    def pop_current(self) -> Job:
        """Remove and return the highest-priority ready job."""
        return self.ready.pop(0)

    def remove_jobs_of(self, task_name: str) -> int:
        """Drop every ready job belonging to ``task_name``; returns the count."""
        before = len(self.ready)
        self.ready = [job for job in self.ready if job.task.name != task_name]
        return before - len(self.ready)

    @property
    def idle_rate(self) -> float:
        """Fraction of elapsed time the core spent idle (1.0 when unused)."""
        if self.elapsed_time <= 0.0:
            return 1.0
        busy = self.busy_time + self.throttled_time
        return max(0.0, 1.0 - busy / self.elapsed_time)

    @property
    def utilization(self) -> float:
        """Fraction of elapsed time the core spent executing."""
        if self.elapsed_time <= 0.0:
            return 0.0
        return self.busy_time / self.elapsed_time

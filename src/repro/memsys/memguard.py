"""MemGuard: per-core memory-bandwidth reservation.

Reimplementation of the regulation algorithm of Yun et al. (RTAS 2013), the
kernel module the paper loads to defend against the memory-bandwidth DoS
attack:

* time is divided into fixed regulation periods (1 ms by default),
* each core is assigned a budget of DRAM accesses per period,
* a performance counter per core counts accesses and raises an overflow
  interrupt when the budget is exhausted,
* the overflow handler throttles the core (its tasks stop executing) until the
  next period boundary, when every budget is replenished.

The optional *reclaim* mode lets a core that exhausted its budget continue if
other cores have donated unused budget to a global pool, matching the
best-effort sharing mode of the original system.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .perf_counter import CounterBank

__all__ = ["MemGuardConfig", "MemGuard"]


@dataclass
class MemGuardConfig:
    """Configuration of the MemGuard regulator.

    Attributes
    ----------
    period:
        Regulation period in seconds (1 ms in the original implementation).
    budgets:
        Per-core budgets in DRAM accesses per period.  ``None`` means the core
        is unregulated (the paper only regulates the CCE core).
    reclaim:
        Enable best-effort budget reclaiming from the global donation pool.
    """

    period: float = 0.001
    budgets: dict[int, int | None] = field(default_factory=dict)
    reclaim: bool = False

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ValueError("period must be positive")
        for core, budget in self.budgets.items():
            if budget is not None and budget < 0:
                raise ValueError(f"budget for core {core} must be non-negative")


class MemGuard:
    """Per-core bandwidth regulator driven by the scheduler."""

    def __init__(self, num_cores: int, config: MemGuardConfig | None = None) -> None:
        self.num_cores = int(num_cores)
        self.config = config or MemGuardConfig()
        self.counters = CounterBank(self.num_cores)
        self.enabled = True
        self._period_start = 0.0
        self._throttled: set[int] = set()
        self._donation_pool = 0
        self.throttle_events = 0
        for core in range(self.num_cores):
            self.counters[core].program_overflow(self.config.budgets.get(core))

    # -- configuration -----------------------------------------------------------

    def set_budget(self, core: int, budget: int | None) -> None:
        """Assign (or remove, with ``None``) the budget of one core."""
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.config.budgets[core] = budget
        self.counters[core].program_overflow(budget)

    def budget(self, core: int) -> int | None:
        """Budget of ``core`` in accesses per period (``None`` = unregulated)."""
        return self.config.budgets.get(core)

    def disable(self) -> None:
        """Turn regulation off (the Figure 4 configuration)."""
        self.enabled = False
        self._throttled.clear()

    def enable(self) -> None:
        """Turn regulation on (the Figure 5 configuration)."""
        self.enabled = True

    # -- runtime interface used by the scheduler ----------------------------------

    def is_throttled(self, core: int) -> bool:
        """True while ``core`` must not execute (budget exhausted this period)."""
        return self.enabled and core in self._throttled

    def allowed_accesses(self, core: int) -> int | None:
        """Accesses the core may still issue this period (``None`` = unlimited)."""
        if not self.enabled:
            return None
        budget = self.config.budgets.get(core)
        if budget is None:
            return None
        remaining = budget - self.counters[core].since_reset
        if remaining > 0:
            return remaining
        if self.config.reclaim and self._donation_pool > 0:
            return self._donation_pool
        return 0

    def record_accesses(self, core: int, accesses: int) -> None:
        """Account accesses issued by ``core`` and throttle it if over budget."""
        counter = self.counters[core]
        overflowed = counter.add(accesses)
        if not self.enabled:
            return
        budget = self.config.budgets.get(core)
        if budget is None:
            return
        if self.config.reclaim and counter.since_reset > budget:
            # Draw the excess from the donation pool if available.
            excess = counter.since_reset - budget
            drawn = min(excess, self._donation_pool)
            self._donation_pool -= drawn
            if excess > drawn:
                self._throttle(core)
        elif overflowed:
            self._throttle(core)

    def _throttle(self, core: int) -> None:
        if core not in self._throttled:
            self._throttled.add(core)
            self.throttle_events += 1

    def advance_to(self, now: float) -> None:
        """Advance regulator time; replenish budgets at period boundaries."""
        while now - self._period_start >= self.config.period - 1e-12:
            self._period_start += self.config.period
            if self.config.reclaim:
                self._donation_pool = 0
                for core in range(self.num_cores):
                    budget = self.config.budgets.get(core)
                    if budget is not None:
                        unused = max(0, budget - self.counters[core].since_reset)
                        self._donation_pool += unused
            for core in range(self.num_cores):
                self.counters[core].reset()
            self._throttled.clear()

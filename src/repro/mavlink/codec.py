"""Framing codec for the MAVLink-like protocol.

Frame layout (little-endian)::

    offset  size  field
    0       1     magic (0xFD)
    1       1     payload length
    2       1     sequence number
    3       1     system id
    4       1     component id
    5       1     message id (low byte)
    6       2     message id (high bytes, little-endian)
    8       n     payload
    8+n     2     CRC-16/CCITT over bytes 1..8+n-1

The 8-byte header plus 2-byte CRC reproduce the 10 bytes of framing overhead
assumed by the Table I payload sizes (see :mod:`repro.mavlink.messages`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .messages import MavlinkMessage, message_class_for_id

__all__ = ["MAGIC", "Frame", "MavlinkCodec", "DecodeError", "crc16"]

MAGIC = 0xFD
HEADER_LENGTH = 8
CRC_LENGTH = 2


class DecodeError(ValueError):
    """Raised when a datagram cannot be decoded as a valid frame."""


def crc16(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE used to protect the frame."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class Frame:
    """A decoded frame: addressing metadata plus the parsed message."""

    sequence: int
    system_id: int
    component_id: int
    message: MavlinkMessage


class MavlinkCodec:
    """Stateful encoder/decoder: tracks the outgoing sequence number."""

    def __init__(self, system_id: int = 1, component_id: int = 1) -> None:
        self.system_id = int(system_id)
        self.component_id = int(component_id)
        self._sequence = 0
        self.decode_errors = 0

    def encode(self, message: MavlinkMessage) -> bytes:
        """Serialise ``message`` into a framed datagram."""
        payload = message.pack()
        if len(payload) > 255:
            raise ValueError("payload too large for a single frame")
        header = struct.pack(
            "<BBBBBBH",
            MAGIC,
            len(payload),
            self._sequence & 0xFF,
            self.system_id,
            self.component_id,
            message.MSG_ID & 0xFF,
            (message.MSG_ID >> 8) & 0xFFFF,
        )
        self._sequence = (self._sequence + 1) & 0xFF
        body = header + payload
        checksum = crc16(body[1:])
        return body + struct.pack("<H", checksum)

    def frame_size(self, message: MavlinkMessage) -> int:
        """Size in bytes of the frame that would carry ``message``."""
        return HEADER_LENGTH + len(message.pack()) + CRC_LENGTH

    def decode(self, datagram: bytes) -> Frame:
        """Parse one framed datagram.

        Raises
        ------
        DecodeError
            On truncated data, bad magic, bad CRC or an unknown message id.
            Malformed flood packets sent by the UDP DoS attacker end up here.
        """
        try:
            if len(datagram) < HEADER_LENGTH + CRC_LENGTH:
                raise DecodeError("datagram shorter than minimum frame")
            magic, length, sequence, system_id, component_id, msg_id_low, msg_id_high = (
                struct.unpack("<BBBBBBH", datagram[:HEADER_LENGTH])
            )
            if magic != MAGIC:
                raise DecodeError(f"bad magic byte 0x{magic:02x}")
            expected_size = HEADER_LENGTH + length + CRC_LENGTH
            if len(datagram) != expected_size:
                raise DecodeError("frame length mismatch")
            payload = datagram[HEADER_LENGTH:HEADER_LENGTH + length]
            (received_crc,) = struct.unpack("<H", datagram[-CRC_LENGTH:])
            if crc16(datagram[1:-CRC_LENGTH]) != received_crc:
                raise DecodeError("CRC mismatch")
            msg_id = msg_id_low | (msg_id_high << 8)
            try:
                message_cls = message_class_for_id(msg_id)
            except KeyError as exc:
                raise DecodeError(f"unknown message id {msg_id}") from exc
            message = message_cls.unpack(payload)
        except DecodeError:
            self.decode_errors += 1
            raise
        except struct.error as exc:
            self.decode_errors += 1
            raise DecodeError(str(exc)) from exc
        return Frame(
            sequence=sequence,
            system_id=system_id,
            component_id=component_id,
            message=message,
        )

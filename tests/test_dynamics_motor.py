"""Tests for the motor and motor-bank models."""

import numpy as np
import pytest

from repro.dynamics import Motor, MotorBank, MotorParameters


class TestMotorParameters:
    def test_defaults_valid(self):
        params = MotorParameters()
        assert params.max_thrust > 0.0

    def test_rejects_inverted_speed_range(self):
        with pytest.raises(ValueError):
            MotorParameters(max_speed=50.0, min_speed=100.0)

    def test_rejects_nonpositive_time_constant(self):
        with pytest.raises(ValueError):
            MotorParameters(time_constant=0.0)

    def test_rejects_nonpositive_coefficients(self):
        with pytest.raises(ValueError):
            MotorParameters(thrust_coefficient=0.0)


class TestMotor:
    def test_disarmed_motor_ignores_throttle(self):
        motor = Motor()
        motor.step(1.0, 0.01)
        assert motor.speed < MotorParameters().min_speed

    def test_arming_spins_to_idle(self):
        motor = Motor()
        motor.arm()
        assert motor.speed == pytest.approx(MotorParameters().min_speed)

    def test_speed_converges_to_command(self):
        motor = Motor()
        motor.arm()
        for _ in range(1000):
            motor.step(1.0, 0.001)
        assert motor.speed == pytest.approx(MotorParameters().max_speed, rel=1e-3)

    def test_first_order_lag_is_monotone(self):
        motor = Motor()
        motor.arm()
        speeds = [motor.step(0.8, 0.001) for _ in range(200)]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))

    def test_throttle_is_clipped(self):
        motor = Motor()
        motor.arm()
        assert motor.command_to_speed(2.0) == motor.command_to_speed(1.0)
        assert motor.command_to_speed(-1.0) == motor.command_to_speed(0.0)

    def test_thrust_is_quadratic_in_speed(self):
        params = MotorParameters()
        motor = Motor(params)
        motor.arm()
        for _ in range(2000):
            motor.step(1.0, 0.001)
        assert motor.thrust == pytest.approx(params.thrust_coefficient * motor.speed**2)

    def test_step_rejects_nonpositive_dt(self):
        motor = Motor()
        with pytest.raises(ValueError):
            motor.step(0.5, 0.0)

    def test_disarm_cuts_response(self):
        motor = Motor()
        motor.arm()
        for _ in range(100):
            motor.step(0.8, 0.001)
        motor.disarm()
        for _ in range(2000):
            motor.step(0.8, 0.001)
        assert motor.speed < 1.0


class TestMotorBank:
    def test_requires_at_least_one_motor(self):
        with pytest.raises(ValueError):
            MotorBank(0)

    def test_armed_reports_all(self):
        bank = MotorBank(4)
        assert not bank.armed
        bank.arm()
        assert bank.armed

    def test_step_validates_command_shape(self):
        bank = MotorBank(4)
        bank.arm()
        with pytest.raises(ValueError):
            bank.step(np.array([0.5, 0.5]), 0.001)

    def test_step_returns_speeds(self):
        bank = MotorBank(4)
        bank.arm()
        speeds = bank.step(np.full(4, 0.5), 0.001)
        assert speeds.shape == (4,)
        assert np.all(speeds > 0.0)

    def test_differential_commands_produce_differential_thrust(self):
        bank = MotorBank(4)
        bank.arm()
        for _ in range(1000):
            bank.step(np.array([0.8, 0.4, 0.8, 0.4]), 0.001)
        thrusts = bank.thrusts
        assert thrusts[0] > thrusts[1]
        assert thrusts[2] > thrusts[3]

    def test_len(self):
        assert len(MotorBank(6)) == 6

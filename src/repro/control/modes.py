"""Flight modes supported by the controllers.

The paper's flight procedure is: take off in manual mode, then switch to
position-control mode where the drone stabilises itself at a 3D setpoint.
The RC mode switch (channel 5) selects the mode.
"""

from __future__ import annotations

from enum import Enum

from ..sensors.rc import PWM_MAX, PWM_MID, RcChannels

__all__ = ["FlightMode", "mode_from_rc"]


class FlightMode(Enum):
    """Flight modes of the complex controller."""

    MANUAL = "manual"
    STABILIZED = "stabilized"
    POSITION = "position"


def mode_from_rc(channels: RcChannels) -> FlightMode:
    """Decode the flight mode from the RC mode-switch channel."""
    if channels.mode_switch >= (PWM_MID + PWM_MAX) // 2:
        return FlightMode.POSITION
    if channels.mode_switch >= PWM_MID:
        return FlightMode.STABILIZED
    return FlightMode.MANUAL

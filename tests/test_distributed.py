"""Tests for the distributed file-queue backend and trajectory persistence.

Three layers are covered without real flights wherever possible (per the
``ThresholdBackend`` pattern of ``tests/test_adaptive.py``):

* :class:`~repro.campaign.workqueue.FileWorkQueue` primitives and the worker
  loop — claims are exclusive, abandoned leases are re-issued, failures ship
  back as data;
* :class:`~repro.campaign.DistributedBackend` — out-of-order completion
  yields in input order, dead workers surface loudly, crashed workers lose
  nothing (end-to-end with real subprocesses over a cheap picklable fn);
* the runner's completion-order persistence and ``record_arrays`` policy —
  killed-coordinator resume from the store, corrupt ``.npz`` backfill, and
  the CLI/spec override matrix.

The expensive acceptance run (12 real flights, distributed == serial) lives
in ``benchmarks/test_distributed_backend.py``.
"""

import functools
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import (
    CampaignRunner,
    DistributedBackend,
    FileWorkQueue,
    ScenarioGrid,
)
from repro.campaign.results import SUMMARY_FIELDS, VariantOutcome
from repro.campaign.spec import build_runner, build_scenario
from repro.campaign.worker import run_worker
from repro.sim import FlightScenario
from repro.store import CampaignStore, cache_key


def tiny_scenario(**kwargs) -> FlightScenario:
    defaults = dict(name="tiny", duration=0.5, record_hz=20.0)
    defaults.update(kwargs)
    return FlightScenario(**defaults)


def tiny_grid(seeds=(1, 2, 3)) -> ScenarioGrid:
    return ScenarioGrid(tiny_scenario(), axes={"seed": list(seeds)})


def fake_summary(name: str, crashed: bool = False) -> dict:
    summary = {key: None for key in SUMMARY_FIELDS}
    summary.update({
        "scenario": name,
        "crashed": crashed,
        "switched_to_safety": crashed,
        "max_deviation": 3.0 if crashed else 0.4,
        "recovered": not crashed,
    })
    return summary


def fake_outcome(variant) -> VariantOutcome:
    return VariantOutcome(
        name=variant.name,
        axes=variant.axes,
        seed=variant.scenario.seed,
        summary=fake_summary(variant.name),
        error=None,
        wall_time=0.001,
    )


def fake_arrays(samples: int = 4) -> dict:
    return {
        "time": np.linspace(0.0, 1.0, samples),
        "position": np.zeros((samples, 3)),
        "setpoint": np.zeros((samples, 3)),
        "velocity": np.zeros((samples, 3)),
        "attitude": np.zeros((samples, 3)),
        "active_source": np.array(["complex"] * samples),
        "crashed": np.zeros(samples, dtype=bool),
    }


# -- picklable worker functions (module-level so queue workers can import them) --


def _double(item):
    return item * 2


def _triple(item):
    return item * 3


def _boom(item):
    raise RuntimeError(f"boom on {item!r}")


def _exit_hard(item):
    os._exit(3)  # simulates a worker killed mid-task (no heartbeat survives)


def _crash_worker_once(item, marker_dir):
    """Kill the whole worker process on the first attempt at item 'a'."""
    marker = Path(marker_dir) / f"{item}.attempted"
    if item == "a" and not marker.exists():
        marker.touch()
        os._exit(17)
    return item * 2


class TestFileWorkQueue:
    def test_enqueue_claim_complete_roundtrip(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        for index, payload in enumerate(["x", "y"]):
            queue.enqueue(index, payload)
        assert queue.pending_count() == 2

        index, payload, lease = queue.claim("w1")
        assert (index, payload) == (0, "x")  # lowest index first
        assert lease.exists()
        queue.complete(index, ("ok", "done"), lease)
        assert not lease.exists()
        assert queue.collect() == {0: ("ok", "done")}
        assert queue.collect(seen={0}) == {}
        assert queue.pending_count() == 1

    def test_claims_are_exclusive(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, "only")
        assert queue.claim("w1") is not None
        assert queue.claim("w2") is None

    def test_abandoned_lease_is_reissued(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, "task")
        queue.claim("dead-worker")
        assert queue.claim("w2") is None  # still leased
        time.sleep(0.05)
        assert queue.reclaim_expired(lease_timeout=0.01) == [0]
        index, payload, _ = queue.claim("w2")
        assert (index, payload) == (0, "task")

    def test_heartbeat_keeps_the_lease(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, "task")
        _, _, lease = queue.claim("w1")
        time.sleep(0.2)
        queue.heartbeat(lease)
        assert queue.reclaim_expired(lease_timeout=0.15) == []

    def test_worker_id_must_be_lease_name_safe(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        with pytest.raises(ValueError, match="worker id"):
            queue.claim("host.with.dots")

    def test_run_worker_drains_queue_in_process(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        for index, item in enumerate([1, 2, 3]):
            queue.enqueue(index, (_double, item))
        assert run_worker(tmp_path, worker_id="t", poll_interval=0.01,
                          max_tasks=3) == 3
        results = queue.collect()
        assert results == {0: ("ok", 2), 1: ("ok", 4), 2: ("ok", 6)}

    def test_stop_prevents_draining_an_aborted_campaign(self, tmp_path):
        # Stop is checked before claiming: leftover tasks of an aborted
        # campaign must not be flown by the fleet.
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, (_double, 1))
        queue.enqueue(1, (_double, 2))
        queue.request_stop()
        assert run_worker(tmp_path, worker_id="t", poll_interval=0.01) == 0
        assert queue.pending_count() == 2

    def test_idle_worker_exits_when_coordinator_is_stale(self, tmp_path):
        # A coordinator killed without cleanup never raises the stop
        # sentinel; the worker must notice the stale heartbeat and exit
        # rather than poll the abandoned queue forever.
        queue = FileWorkQueue(tmp_path)
        queue.touch_coordinator()
        time.sleep(0.05)
        completed = run_worker(
            tmp_path, worker_id="t", poll_interval=0.01, orphan_timeout=0.01
        )
        assert completed == 0

    def test_idle_worker_waits_on_manually_driven_queues(self, tmp_path):
        # No coordinator heartbeat at all (queue driven by hand): the
        # orphan guard must not apply — only stop ends the worker.
        queue = FileWorkQueue(tmp_path)
        queue.request_stop()
        assert run_worker(
            tmp_path, worker_id="t", poll_interval=0.01, orphan_timeout=0.01
        ) == 0

    def test_worker_ships_exceptions_as_data(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, (_boom, "it"))
        run_worker(tmp_path, worker_id="t", poll_interval=0.01, max_tasks=1)
        status, text = queue.collect()[0]
        assert status == "error"
        assert "RuntimeError" in text and "boom on 'it'" in text

    def test_unimportable_payload_is_a_poison_pill_not_a_crash(self, tmp_path):
        # A payload whose function cannot be resolved on the worker
        # (PYTHONPATH mismatch) raises ModuleNotFoundError from
        # pickle.loads; claiming must publish the failure, not die on it.
        queue = FileWorkQueue(tmp_path)
        (queue.tasks_dir / "00000000.run0.task").write_bytes(
            b"cdefinitely_missing_module\nboom\n."  # GLOBAL opcode pickle
        )
        assert queue.claim("t") is None  # poisoned, not raised
        status, text = queue.collect()[0]
        assert status == "error"
        assert "unreadable task payload" in text

    def test_results_of_other_runs_are_ignored(self, tmp_path):
        # A worker of a killed previous campaign finishing late answers
        # under the old run id; the new coordinator must not collect it.
        stale = FileWorkQueue(tmp_path, run_id="old")
        stale.complete(0, ("ok", "stale"))
        fresh = FileWorkQueue(tmp_path, run_id="new")
        assert fresh.collect() == {}
        fresh.enqueue(0, (_double, 5))
        index, payload, lease = fresh.claim("w")
        fresh.complete(index, ("ok", 10), lease)
        assert fresh.collect() == {0: ("ok", 10)}

    def test_reset_purges_stale_state_between_campaigns(self, tmp_path):
        queue = FileWorkQueue(tmp_path)
        queue.enqueue(0, "stale-task")
        queue.complete(1, ("ok", "stale-result"))
        queue.request_stop()
        queue.reset()
        assert queue.pending_count() == 0
        assert queue.collect() == {}
        assert not queue.stop_requested()


class TestDistributedBackend:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            DistributedBackend(workers=-1)
        with pytest.raises(ValueError, match="queue_dir"):
            DistributedBackend(workers=0)
        with pytest.raises(ValueError, match="lease_timeout"):
            DistributedBackend(lease_timeout=0.0)
        with pytest.raises(ValueError, match="poll_interval"):
            DistributedBackend(poll_interval=0.0)
        DistributedBackend(workers=0, queue_dir=str(tmp_path))  # external fleet

    def test_explicit_auth_token_rejected_on_file_transport(self):
        with pytest.raises(ValueError, match="auth_token applies"):
            DistributedBackend(auth_token="pointless")

    def test_env_auth_token_on_file_transport_warns(self, monkeypatch):
        # A globally exported secret must not hard-fail unrelated file
        # campaigns, but silently protecting nothing is not OK either.
        monkeypatch.setenv("REPRO_CAMPAIGN_AUTH_TOKEN", "exported")
        backend = DistributedBackend(workers=1, lease_timeout=60.0,
                                     poll_interval=0.02)
        with pytest.warns(RuntimeWarning, match="no authentication"):
            assert list(backend.map(_double, [3])) == [6]

    def test_empty_items(self):
        assert list(DistributedBackend(workers=1).map(_double, [])) == []

    def test_out_of_order_completion_yields_input_order(self, tmp_path):
        """An external worker completes 2, 0, 1; the coordinator reports each
        completion immediately but yields strictly in input order."""
        backend = DistributedBackend(
            workers=0, queue_dir=str(tmp_path), poll_interval=0.01,
            lease_timeout=60.0,
        )
        completions = []

        def on_complete(index, result):
            completions.append((index, result))
            (tmp_path / f"consumed-{index}").touch()  # gate for the worker

        def eccentric_worker():
            queue = FileWorkQueue(tmp_path)
            claimed = {}
            deadline = time.time() + 10.0
            while len(claimed) < 3 and time.time() < deadline:
                item = queue.claim("ext")
                if item is None:
                    time.sleep(0.01)
                    continue
                claimed[item[0]] = item
            for index in (2, 0, 1):
                task_index, payload, lease = claimed[index]
                fn, item = payload
                queue.complete(task_index, ("ok", fn(item)), lease)
                while not (tmp_path / f"consumed-{index}").exists():
                    if time.time() > deadline:
                        return
                    time.sleep(0.01)

        thread = threading.Thread(target=eccentric_worker, daemon=True)
        thread.start()
        results = list(backend.map(_double, [10, 20, 30], on_complete=on_complete))
        thread.join(timeout=10.0)
        assert results == [20, 40, 60]
        # on_complete fired in completion order, not input order.
        assert completions == [(2, 60), (0, 20), (1, 40)]

    def test_crashed_worker_releases_lease_and_task_is_reflown(self, tmp_path):
        # Worker 1 claims item 'a' and dies mid-task (os._exit: heartbeat
        # thread dies with it).  The lease expires, the coordinator re-queues
        # the task and the surviving worker completes it.
        fn = functools.partial(_crash_worker_once, marker_dir=str(tmp_path))
        backend = DistributedBackend(
            workers=2, lease_timeout=1.0, poll_interval=0.05
        )
        results = list(backend.map(fn, ["a", "b", "c"]))
        assert results == ["aa", "bb", "cc"]
        assert (tmp_path / "a.attempted").exists()

    def test_reused_queue_dir_does_not_serve_stale_results(self, tmp_path):
        # The documented external-fleet workflow reuses one shared
        # directory; a second campaign must not collect the first one's
        # result files as its own outcomes.
        backend = DistributedBackend(workers=1, queue_dir=str(tmp_path),
                                     lease_timeout=60.0, poll_interval=0.02)
        first = list(backend.map(_double, [1, 2, 3]))
        assert first == [2, 4, 6]
        second = list(backend.map(_triple, [1, 2, 3]))
        assert second == [3, 6, 9]

    def test_remote_failure_raises_with_traceback(self):
        backend = DistributedBackend(workers=1, lease_timeout=60.0)
        with pytest.raises(RuntimeError, match="distributed worker failed"):
            list(backend.map(_boom, [1]))

    def test_all_workers_dead_fails_loudly(self):
        backend = DistributedBackend(workers=1, lease_timeout=60.0,
                                     poll_interval=0.05)
        with pytest.raises(RuntimeError, match="workers exited"):
            list(backend.map(_exit_hard, [1, 2]))


# -- fake backends for runner-level behaviour (no subprocesses, no flights) ----


@dataclass(frozen=True)
class OutOfOrderBackend:
    """Fabricates outcomes, reports completions in reverse input order, then
    yields in input order — the contract the runner must tolerate."""

    flown: list = field(default_factory=list, compare=False)

    name = "out-of-order-fake"

    def map(self, fn, items, on_complete=None):
        outcomes = [fake_outcome(variant) for variant in items]
        for index in reversed(range(len(items))):
            self.flown.append(items[index].name)
            if on_complete is not None:
                on_complete(index, outcomes[index])
        yield from outcomes


@dataclass(frozen=True)
class DyingCoordinatorBackend:
    """Completes (and reports) every item, then dies before yielding any —
    the coordinator-killed-after-the-flights-finished scenario."""

    name = "dying-coordinator-fake"

    def map(self, fn, items, on_complete=None):
        for index, variant in enumerate(items):
            if on_complete is not None:
                on_complete(index, fake_outcome(variant))
        raise RuntimeError("coordinator died")
        yield  # pragma: no cover - generator marker


@dataclass(frozen=True)
class ArraysBackend:
    """Fabricates ``(outcome, arrays)`` results like a record_arrays worker."""

    flown: list = field(default_factory=list, compare=False)

    name = "arrays-fake"

    def map(self, fn, items):
        for variant in items:
            self.flown.append(variant.name)
            yield fake_outcome(variant), fake_arrays()


class TestRunnerCompletionOrderPersistence:
    def test_out_of_order_completions_persist_and_merge_in_input_order(
        self, tmp_path
    ):
        store = CampaignStore(tmp_path)
        result = CampaignRunner(backend=OutOfOrderBackend(), store=store).run(
            tiny_grid()
        )
        assert [outcome.name for outcome in result] == [
            "tiny/seed=1", "tiny/seed=2", "tiny/seed=3",
        ]
        assert len(store) == 3
        assert store.stats.writes == 3  # persisted once each, at completion

    def test_killed_coordinator_resumes_from_store_without_reflying(
        self, tmp_path
    ):
        # All flights completed and were persisted, but the coordinator died
        # before yielding: the serial fallback must serve every variant from
        # the store instead of re-flying it.
        store = CampaignStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="finishing the remaining"):
            result = CampaignRunner(
                backend=DyingCoordinatorBackend(), store=store
            ).run(tiny_grid())
        assert result.fallback_reason == "RuntimeError('coordinator died')"
        assert len(result) == 3
        assert all(outcome.cached for outcome in result)
        assert result.cache_hits == 3
        # A fresh uninterrupted run is fully warm.
        rerun = CampaignRunner(mode="serial", store=CampaignStore(tmp_path)).run(
            tiny_grid()
        )
        assert (rerun.cache_hits, rerun.cache_misses) == (3, 0)


class TestRecordArrays:
    def test_arrays_persist_and_serve_on_warm_hits(self, tmp_path):
        store = CampaignStore(tmp_path)
        runner = CampaignRunner(
            backend=ArraysBackend(), store=store, record_arrays=True
        )
        cold = runner.run(tiny_grid(seeds=(1, 2)))
        assert cold.cache_misses == 2
        for variant in tiny_grid(seeds=(1, 2)).variants():
            arrays = store.get_arrays(variant)
            assert arrays is not None
            assert set(arrays) == set(fake_arrays())

        warm_backend = ArraysBackend()
        warm = CampaignRunner(
            backend=warm_backend, store=CampaignStore(tmp_path),
            record_arrays=True,
        ).run(tiny_grid(seeds=(1, 2)))
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)
        assert warm_backend.flown == []  # arrays served, nothing re-flown

    def test_corrupt_npz_is_reflown_and_backfilled(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignRunner(
            backend=ArraysBackend(), store=store, record_arrays=True
        ).run(tiny_grid(seeds=(1, 2)))
        victim_variant = tiny_grid(seeds=(1, 2)).variants()[0]
        archive = store.path_for(store.key_for(victim_variant)).with_suffix(".npz")
        archive.write_bytes(b"garbage")

        warm_backend = ArraysBackend()
        fresh_store = CampaignStore(tmp_path)
        warm = CampaignRunner(
            backend=warm_backend, store=fresh_store, record_arrays=True
        ).run(tiny_grid(seeds=(1, 2)))
        # The poisoned cell is re-flown (its summary alone is not enough),
        # the intact one is served with its arrays.
        assert (warm.cache_hits, warm.cache_misses) == (1, 1)
        assert warm_backend.flown == [victim_variant.name]
        assert fresh_store.stats.corrupt == 1
        assert fresh_store.get_arrays(victim_variant) is not None

    def test_hit_without_arrays_is_backfilled(self, tmp_path):
        # Cells flown before record_arrays was switched on have no .npz;
        # asking for arrays re-flies them once, then serves warm.
        @dataclass(frozen=True)
        class PlainBackend:
            name = "plain-fake"

            def map(self, fn, items):
                for variant in items:
                    yield fake_outcome(variant)

        store = CampaignStore(tmp_path)
        CampaignRunner(backend=PlainBackend(), store=store).run(
            tiny_grid(seeds=(1,))
        )
        backfill = CampaignRunner(
            backend=ArraysBackend(), store=CampaignStore(tmp_path),
            record_arrays=True,
        ).run(tiny_grid(seeds=(1,)))
        assert (backfill.cache_hits, backfill.cache_misses) == (0, 1)
        assert CampaignStore(tmp_path).get_arrays(
            tiny_grid(seeds=(1,)).variants()[0]
        ) is not None

    def test_serial_fallback_also_backfills_missing_arrays(self, tmp_path):
        # The fallback path must honour the same record_arrays policy as the
        # pre-dispatch lookup: a summary-only cell is re-flown (here: a real
        # tiny flight), not served without its arrays.
        @dataclass(frozen=True)
        class PlainBackend:
            name = "plain-fake"

            def map(self, fn, items):
                for variant in items:
                    yield fake_outcome(variant)

        @dataclass(frozen=True)
        class BrokenBackend:
            name = "broken-fake"

            def map(self, fn, items):
                raise OSError("pool gone")
                yield  # pragma: no cover - generator marker

        store = CampaignStore(tmp_path)
        CampaignRunner(backend=PlainBackend(), store=store).run(
            tiny_grid(seeds=(1,))
        )
        with pytest.warns(RuntimeWarning, match="finishing the remaining"):
            result = CampaignRunner(
                backend=BrokenBackend(), store=CampaignStore(tmp_path),
                record_arrays=True,
            ).run(tiny_grid(seeds=(1,)))
        outcome = result.outcomes[0]
        assert not outcome.cached  # re-flown, not served array-less
        assert outcome.error is None
        assert CampaignStore(tmp_path).get_arrays(
            tiny_grid(seeds=(1,)).variants()[0]
        ) is not None

    def test_record_arrays_requires_store(self):
        with pytest.raises(ValueError, match="record_arrays requires a store"):
            CampaignRunner(record_arrays=True)

    def test_stored_arrays_export_as_telemetry_rows(self, tmp_path):
        from repro.analysis.export import trajectory_to_rows, write_trajectory_csv

        store = CampaignStore(tmp_path)
        CampaignRunner(
            backend=ArraysBackend(), store=store, record_arrays=True
        ).run(tiny_grid(seeds=(1,)))
        arrays = store.get_arrays(tiny_grid(seeds=(1,)).variants()[0])
        rows = trajectory_to_rows(arrays)
        assert len(rows) == 4
        assert set(rows[0]) == {
            "time", "x", "y", "z", "x_setpoint", "y_setpoint", "z_setpoint",
            "vx", "vy", "vz", "roll", "pitch", "yaw", "active_source",
            "crashed",
        }
        path = tmp_path / "trajectory.csv"
        assert write_trajectory_csv(arrays, path) == 4
        assert path.read_text().startswith("time,")


@dataclass(frozen=True)
class AutoscalingFakeBackend:
    """Fabricates outcomes and one scale event, like an autoscaled
    ``DistributedBackend`` would."""

    scale_events: list = field(default_factory=list, compare=False)

    name = "autoscale-fake"

    def map(self, fn, items):
        self.scale_events.append({
            "event": "scale-up", "workers": 2, "backlog": len(items),
            "elapsed": 0.0,
        })
        for variant in items:
            yield fake_outcome(variant)


class TestScaleEventSurface:
    def test_runner_surfaces_backend_scale_events(self):
        result = CampaignRunner(backend=AutoscalingFakeBackend()).run(tiny_grid())
        assert result.scale_events == (
            {"event": "scale-up", "workers": 2, "backlog": 3, "elapsed": 0.0},
        )
        assert result.to_dict()["scale_events"] == [
            {"event": "scale-up", "workers": 2, "backlog": 3, "elapsed": 0.0},
        ]

    def test_fixed_backends_record_no_events(self):
        result = CampaignRunner(backend=OutOfOrderBackend()).run(tiny_grid())
        assert result.scale_events == ()
        assert result.to_dict()["scale_events"] == []


class TestSpecOverrideMatrix:
    """CLI overrides vs the ``[runner]`` table, exhaustively."""

    def test_salt_without_store_is_a_clear_error(self):
        with pytest.raises(ValueError, match="'salt' requires a 'store'"):
            build_runner({"runner": {"salt": "gen-9"}})

    def test_salt_with_store_partitions(self, tmp_path):
        runner = build_runner(
            {"runner": {"store": str(tmp_path), "salt": "gen-9"}}
        )
        assert runner.store is not None
        assert runner.store.salt == "gen-9"

    def test_cli_store_dir_keeps_spec_salt(self, tmp_path):
        runner = build_runner(
            {"runner": {"store": str(tmp_path / "spec"), "salt": "gen-9"}},
            store_dir=tmp_path / "cli",
        )
        assert runner.store.root == tmp_path / "cli"
        assert runner.store.salt == "gen-9"

    def test_cli_policy_override_warns_about_dropped_backend(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"workers": 2}}}
        with pytest.warns(RuntimeWarning, match="discards the spec's explicit"):
            runner = build_runner(spec, mode="serial")
        assert runner.backend is None and runner.mode == "serial"
        with pytest.warns(RuntimeWarning, match="discards the spec's explicit"):
            runner = build_runner(spec, max_workers=2)
        assert runner.backend is None and runner.max_workers == 2

    def test_cli_backend_override_keeps_matching_spec_options(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"workers": 7}}}
        runner = build_runner(spec, backend="distributed")
        assert isinstance(runner.backend, DistributedBackend)
        assert runner.backend.workers == 7

    def test_cli_backend_override_drops_foreign_spec_options_with_warning(self):
        from repro.campaign import SerialBackend

        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"workers": 7}}}
        with pytest.warns(RuntimeWarning, match="discards the spec's backend_options"):
            runner = build_runner(spec, backend="serial")
        assert isinstance(runner.backend, SerialBackend)

    def test_orphan_backend_options_still_rejected_with_cli_backend(self):
        # backend_options without a spec backend name stays a loud error
        # even when the backend comes from the command line — silently
        # dropping the options (e.g. a shared queue_dir) would run the
        # campaign somewhere else entirely.
        spec = {"runner": {"backend_options": {"workers": 7}}}
        with pytest.raises(ValueError, match="requires a 'backend' name"):
            build_runner(spec, backend="distributed")

    def test_cli_backend_override_conflicts_with_policy_flags(self):
        with pytest.raises(ValueError, match="cannot be combined"):
            build_runner({}, backend="serial", max_workers=2)
        with pytest.raises(ValueError, match="cannot be combined"):
            build_runner({}, backend="serial", mode="serial")

    def test_record_arrays_spec_and_override(self, tmp_path):
        spec = {"runner": {"store": str(tmp_path), "record_arrays": True}}
        assert build_runner(spec).record_arrays is True
        plain = {"runner": {"store": str(tmp_path)}}
        assert build_runner(plain).record_arrays is False
        assert build_runner(plain, record_arrays=True).record_arrays is True

    def test_record_arrays_without_store_is_a_clear_error(self):
        with pytest.raises(ValueError, match="'record_arrays' requires"):
            build_runner({"runner": {"record_arrays": True}})

    def test_spec_backend_options_select_transport(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "socket",
                                               "workers": 2}}}
        runner = build_runner(spec)
        assert isinstance(runner.backend, DistributedBackend)
        assert runner.backend.transport == "socket"
        assert runner.backend.workers == 2

    def test_spec_transport_defaults_to_file(self):
        runner = build_runner({"runner": {"backend": "distributed"}})
        assert runner.backend.transport == "file"

    def test_spec_invalid_transport_is_a_clear_error(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "telepathy"}}}
        with pytest.raises(ValueError, match="transport"):
            build_runner(spec)

    def test_spec_socket_transport_rejects_queue_dir(self, tmp_path):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "socket",
                                               "queue_dir": str(tmp_path)}}}
        with pytest.raises(ValueError, match="queue_dir applies"):
            build_runner(spec)

    def test_spec_autoscale_options(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"workers": 0,
                                               "max_workers": 4}}}
        runner = build_runner(spec)
        assert runner.backend.workers == 0
        assert runner.backend.max_workers == 4

    def test_cli_backend_override_keeps_matching_transport_options(self):
        spec = {"runner": {"backend": "distributed",
                           "backend_options": {"transport": "socket"}}}
        runner = build_runner(spec, backend="distributed")
        assert runner.backend.transport == "socket"

    def test_seed_coercion_is_constructor_path_consistent(self):
        # "seed": 3.0 used to reach the FlightScenario constructor as a
        # float (different cache key than 3); both paths must coerce.
        direct = build_scenario({"seed": 3.0})
        assert direct.seed == 3 and isinstance(direct.seed, int)
        assert cache_key(direct) == cache_key(build_scenario({"seed": 3}))
        figured = build_scenario({"figure": "figure5", "seed": 3.0})
        assert figured.seed == 3 and isinstance(figured.seed, int)

    def test_non_integral_seed_rejected(self):
        with pytest.raises(ValueError, match="not integral"):
            build_scenario({"seed": 3.5})


class TestCliDistributedEndToEnd:
    """The acceptance path: a spec with backend='distributed' and 2 workers
    runs a real (tiny) grid through ``python -m repro.campaign``, caches it,
    and serves trajectory arrays warm."""

    def spec(self, tmp_path):
        import json

        spec = {
            "scenario": {"name": "dist-tiny", "duration": 0.4, "record_hz": 20.0},
            "axes": {"seed": [1, 2]},
            "runner": {
                "backend": "distributed",
                "backend_options": {"workers": 2, "lease_timeout": 120.0},
                "store": str(tmp_path / "cells"),
                "record_arrays": True,
            },
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        return path

    def test_cold_then_warm_with_arrays(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        spec = self.spec(tmp_path)
        assert main([str(spec)]) == 0
        capsys.readouterr()
        assert main([str(spec), "--format", "text"]) == 0
        assert "2 from cache" in capsys.readouterr().out

        store = CampaignStore(tmp_path / "cells")
        grid = ScenarioGrid(
            build_scenario({"name": "dist-tiny", "duration": 0.4,
                            "record_hz": 20.0}),
            axes={"seed": [1, 2]},
        )
        for variant in grid.variants():
            arrays = store.get_arrays(variant)
            assert arrays is not None
            assert len(arrays["time"]) > 0

    def test_backend_cli_flag_overrides_spec(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        spec = self.spec(tmp_path)
        # Forcing the serial backend must still complete (and not spawn
        # workers); the spec's distributed options are dropped.
        assert main([str(spec), "--backend", "serial"]) == 0

"""Simplex decision module: selects between the complex and safety controllers.

Implements the switching half of the Simplex architecture (Figure 1 of the
paper): under normal execution the complex controller's outputs drive the
actuators; after the security monitor reports a violation the module latches
onto the safety controller and ignores further CCE output.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..control.setpoints import ActuatorCommand

__all__ = ["ControlSource", "SwitchEvent", "DecisionModule"]


class ControlSource(Enum):
    """Which controller currently drives the actuators."""

    COMPLEX = "complex"
    SAFETY = "safety"


@dataclass(frozen=True)
class SwitchEvent:
    """Record of a source switch."""

    time: float
    source: ControlSource
    reason: str


class DecisionModule:
    """Holds the latest command from each controller and picks the active one."""

    def __init__(self, engaged_at: float = 0.0) -> None:
        self._source = ControlSource.COMPLEX
        self._complex_command: ActuatorCommand | None = None
        self._safety_command: ActuatorCommand | None = None
        self._last_complex_received: float | None = None
        self.engaged_at = float(engaged_at)
        self.switch_events: list[SwitchEvent] = []
        self.complex_commands_received = 0
        self.safety_commands_received = 0

    @property
    def source(self) -> ControlSource:
        """Currently active control source."""
        return self._source

    @property
    def last_complex_received(self) -> float | None:
        """Time the last complex-controller command arrived, if any."""
        return self._last_complex_received

    @property
    def switched_to_safety(self) -> bool:
        """True once the module has latched onto the safety controller."""
        return self._source is ControlSource.SAFETY

    # -- command submission -------------------------------------------------------

    def submit_complex(self, command: ActuatorCommand, received_at: float) -> None:
        """Record an actuator command received from the complex controller."""
        self.complex_commands_received += 1
        self._last_complex_received = received_at
        if self._source is ControlSource.COMPLEX:
            self._complex_command = command.clipped()

    def submit_safety(self, command: ActuatorCommand) -> None:
        """Record the latest safety-controller command."""
        self.safety_commands_received += 1
        self._safety_command = command.clipped()

    # -- switching -----------------------------------------------------------------

    def switch_to_safety(self, time: float, reason: str) -> None:
        """Latch onto the safety controller (idempotent)."""
        if self._source is ControlSource.SAFETY:
            return
        self._source = ControlSource.SAFETY
        self.switch_events.append(
            SwitchEvent(time=time, source=ControlSource.SAFETY, reason=reason)
        )

    def switch_to_complex(self, time: float, reason: str = "manual reset") -> None:
        """Return control to the complex controller (operator decision only)."""
        if self._source is ControlSource.COMPLEX:
            return
        self._source = ControlSource.COMPLEX
        self.switch_events.append(
            SwitchEvent(time=time, source=ControlSource.COMPLEX, reason=reason)
        )

    # -- selection -----------------------------------------------------------------

    def select(self) -> ActuatorCommand | None:
        """Return the command the actuators should apply right now.

        Falls back to the safety command when the complex controller has not
        produced anything yet.
        """
        if self._source is ControlSource.COMPLEX and self._complex_command is not None:
            return self._complex_command
        return self._safety_command

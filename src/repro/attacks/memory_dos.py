"""Memory-bandwidth DoS attack (the IsolBench ``Bandwidth`` benchmark).

The attacker runs a program inside the container that sequentially reads or
writes a large array, saturating the shared DRAM controller.  Because the
memory bus is shared by all four cores, the HCE's control pipeline slows down
even though the attacker is pinned to the container's core — this is the
attack of Figures 4 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rtos.task import TaskConfig
from .base import Attack

__all__ = ["MemoryBandwidthAttack"]


@dataclass(frozen=True)
class MemoryBandwidthAttack(Attack):
    """Continuous sequential-access memory hog (IsolBench ``Bandwidth``).

    Attributes
    ----------
    access_rate:
        DRAM accesses per second the attacker tries to issue.  The default is
        several times the controller's saturation rate, which is what a tight
        sequential read loop achieves on the Pi 3.
    write_mode:
        Whether the attacker writes (slightly more disruptive) or reads.
    priority:
        SCHED_FIFO priority the attacker *requests*; the container's cgroup
        caps what it actually gets.
    """

    access_rate: float = 2.5e7
    write_mode: bool = True
    priority: int = 99

    #: Wall-clock length of the single never-ending attack job [s]; long enough
    #: to outlast any scenario, so the loop never yields the CPU.
    _JOB_LENGTH = 1.0e6

    def task_config(self, core: int, quantum: float = 0.001) -> TaskConfig:
        """Build the attacker's task: one spin-loop job that never terminates.

        A SCHED_FIFO busy loop is not a periodic activity — it holds the CPU
        for as long as the scheduler lets it — so the task is modelled as a
        single job whose execution time exceeds any scenario duration.
        """
        return TaskConfig(
            name="bandwidth-attack",
            period=2.0 * self._JOB_LENGTH,
            execution_time=self._JOB_LENGTH,
            priority=self.priority,
            core=core,
            # The Bandwidth loop is almost pure memory traffic.
            memory_stall_fraction=0.9,
            accesses_per_job=int(self.access_rate * self._JOB_LENGTH),
            offset=self.start_time,
            skip_if_pending=True,
        )

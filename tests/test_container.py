"""Tests for cgroups, the container model, the runtime and the VM model."""

import pytest

from repro.container import (
    CgroupViolation,
    Container,
    ContainerConfig,
    ContainerRuntime,
    ContainerState,
    CpuCgroup,
    CpusetCgroup,
    MemoryCgroup,
    PortMapping,
    RuntimeConfig,
    VirtualMachine,
    VmConfig,
)
from repro.network import NetworkStack
from repro.rtos import MulticoreScheduler, TaskConfig


def container_task(name="proc", priority=99, core=0):
    return TaskConfig(name=name, period=0.01, execution_time=0.001, priority=priority, core=core)


class TestCgroups:
    def test_cpuset_requires_cores(self):
        with pytest.raises(ValueError):
            CpusetCgroup(allowed_cores=frozenset())

    def test_cpuset_redirects_disallowed_core(self):
        cpuset = CpusetCgroup(allowed_cores=frozenset({3}))
        assert cpuset.admit_core(0) == 3
        assert cpuset.admit_core(3) == 3

    def test_cpu_priority_cap(self):
        cpu = CpuCgroup(max_priority=10)
        assert cpu.admit_priority(99) == 10
        assert cpu.admit_priority(5) == 5

    def test_memory_cgroup_enforces_limit(self):
        memory = MemoryCgroup(limit_bytes=1000)
        memory.allocate(600)
        with pytest.raises(CgroupViolation):
            memory.allocate(600)
        memory.free(600)
        memory.allocate(600)

    def test_memory_cgroup_free_never_negative(self):
        memory = MemoryCgroup(limit_bytes=1000)
        memory.free(500)
        assert memory.used_bytes == 0


class TestContainer:
    def test_default_config_matches_prototype(self):
        config = ContainerConfig()
        assert config.cpuset_cores == frozenset({3})
        assert not config.privileged
        ports = {mapping.host_port for mapping in config.port_mappings}
        assert ports == {14600, 14660}

    def test_admit_task_applies_cgroups(self):
        container = Container(ContainerConfig())
        admitted = container.admit_task(container_task(priority=99, core=0))
        assert admitted.core == 3
        assert admitted.priority == ContainerConfig().max_priority

    def test_privileged_container_bypasses_cgroups(self):
        container = Container(ContainerConfig(privileged=True))
        admitted = container.admit_task(container_task(priority=99, core=0))
        assert admitted.priority == 99
        assert admitted.core == 0

    def test_admitted_task_preserves_timing_profile(self):
        container = Container(ContainerConfig())
        original = container_task()
        admitted = container.admit_task(original)
        assert admitted.period == original.period
        assert admitted.execution_time == original.execution_time

    def test_stop_and_kill_transition_state(self):
        container = Container(ContainerConfig())
        container.mark_running()
        container.stop()
        assert container.state is ContainerState.STOPPED
        container.kill()
        assert container.state is ContainerState.KILLED


@pytest.fixture
def runtime():
    scheduler = MulticoreScheduler(num_cores=4)
    network = NetworkStack()
    return ContainerRuntime(scheduler, network), scheduler


class TestContainerRuntime:
    def test_create_and_run(self, runtime):
        engine, scheduler = runtime
        container = engine.create()
        assert container.state is ContainerState.CREATED
        engine.run(container)
        assert container.state is ContainerState.RUNNING
        # The engine daemon appears with the first running container.
        assert any(task.name == "dockerd" for task in scheduler.tasks)

    def test_duplicate_name_rejected(self, runtime):
        engine, _ = runtime
        engine.create(ContainerConfig(name="x"))
        with pytest.raises(ValueError):
            engine.create(ContainerConfig(name="x"))

    def test_spawn_requires_running_container(self, runtime):
        engine, _ = runtime
        container = engine.create()
        with pytest.raises(RuntimeError):
            engine.spawn_process(container, container_task())

    def test_spawned_process_respects_cpuset(self, runtime):
        engine, scheduler = runtime
        container = engine.create()
        engine.run(container)
        task = engine.spawn_process(container, container_task(priority=99, core=0))
        assert task.config.core == 3
        assert task.config.priority == ContainerConfig().max_priority
        assert task in scheduler.tasks

    def test_spawned_process_runs_in_scheduler(self, runtime):
        engine, scheduler = runtime
        container = engine.create()
        engine.run(container)
        completions = []
        engine.spawn_process(container, container_task(), callback=completions.append)
        scheduler.advance(0.05)
        assert len(completions) >= 4

    def test_kill_stops_container_processes(self, runtime):
        engine, scheduler = runtime
        container = engine.create()
        engine.run(container)
        completions = []
        engine.spawn_process(container, container_task(), callback=completions.append)
        scheduler.advance(0.02)
        count = len(completions)
        engine.kill(container)
        scheduler.advance(0.05)
        assert len(completions) == count
        assert container.state is ContainerState.KILLED

    def test_run_twice_rejected(self, runtime):
        engine, _ = runtime
        container = engine.create()
        engine.run(container)
        with pytest.raises(RuntimeError):
            engine.run(container)

    def test_custom_network_namespace_registered(self, runtime):
        engine, _ = runtime
        container = engine.create(ContainerConfig(name="other", network="sandbox"))
        engine.run(container)
        # The new namespace can only reach the host.
        assert engine.network.bind("sandbox", 9999) is not None


class TestVirtualMachine:
    def test_vm_adds_emulation_threads(self):
        scheduler = MulticoreScheduler(num_cores=4)
        vm = VirtualMachine()
        tasks = vm.start(scheduler)
        assert len(tasks) == 4
        assert vm.running

    def test_vm_overhead_visible_in_idle_rates(self):
        scheduler = MulticoreScheduler(num_cores=4)
        VirtualMachine().start(scheduler)
        scheduler.advance(5.0)
        idle = scheduler.idle_rates()
        # Every core should show noticeable emulation overhead.
        assert all(rate < 0.95 for rate in idle)
        assert min(idle) > 0.5

    def test_vm_cannot_start_twice(self):
        scheduler = MulticoreScheduler(num_cores=4)
        vm = VirtualMachine()
        vm.start(scheduler)
        with pytest.raises(RuntimeError):
            vm.start(scheduler)

    def test_vm_stop_removes_load(self):
        scheduler = MulticoreScheduler(num_cores=4)
        vm = VirtualMachine()
        vm.start(scheduler)
        vm.stop()
        scheduler.advance(1.0)
        # After stopping before any execution the cores stay (almost) idle.
        assert all(rate > 0.95 for rate in scheduler.idle_rates())

    def test_vm_config_validation(self):
        with pytest.raises(ValueError):
            VmConfig(vcpus=0)
        with pytest.raises(ValueError):
            VmConfig(thread_loads=(1.5,))

    def test_heaviest_thread_lands_on_least_loaded_core(self):
        scheduler = MulticoreScheduler(num_cores=2)
        scheduler.add_task(
            __import__("repro.rtos", fromlist=["Task"]).Task(
                TaskConfig(name="busy", period=0.01, execution_time=0.005, priority=10, core=0)
            )
        )
        vm = VirtualMachine(VmConfig(thread_loads=(0.3,)))
        (task,) = vm.start(scheduler)
        assert task.config.core == 1

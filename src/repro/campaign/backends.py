"""Executor backends: how a campaign's variants are mapped to outcomes.

:class:`~repro.campaign.runner.CampaignRunner` is policy (ordering, caching,
fallback); an :class:`ExecutorBackend` is mechanism.  A backend maps a pure
worker function over variants and yields the results **in input order** —
nothing about grids, stores or summaries leaks into it, so alternative
execution substrates (a cluster scheduler, a batch queue) only have to
implement :meth:`ExecutorBackend.map`.

Backends must yield results as they become available (lazily) rather than
collecting them first: the runner's fallback logic keeps every outcome that
was produced before a mid-campaign pool failure.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Protocol, Sequence, runtime_checkable

__all__ = [
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "get_backend",
]


@runtime_checkable
class ExecutorBackend(Protocol):
    """Maps a worker function over items, yielding results in input order."""

    #: Short identifier used in reports and CLI specs.
    name: str

    def map(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Any]:  # pragma: no cover - protocol signature
        ...


@dataclass(frozen=True)
class SerialBackend:
    """In-process, one-at-a-time execution (also the fallback substrate)."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        for item in items:
            yield fn(item)


@dataclass(frozen=True)
class ProcessPoolBackend:
    """``concurrent.futures.ProcessPoolExecutor`` fan-out.

    Attributes
    ----------
    max_workers:
        Pool size; ``None`` uses the CPU count.  The effective size is
        additionally capped at the number of items.
    """

    max_workers: int | None = None

    name = "process-pool"

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        items = list(items)
        if not items:
            return
        workers = min(self.max_workers or os.cpu_count() or 1, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            yield from pool.map(fn, items)


@dataclass(frozen=True)
class DistributedBackend:
    """Reserved stub for a future multi-machine backend.

    The name is registered so CLI specs and saved campaign configurations can
    already refer to it; selecting it fails loudly at dispatch time (and the
    runner then records the failure and finishes serially rather than losing
    the campaign).
    """

    #: Coordinator endpoint the future implementation will connect to.
    endpoint: str | None = None

    name = "distributed"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        raise NotImplementedError(
            "the distributed executor backend is a stub; run with "
            "'process-pool' or 'serial', or implement ExecutorBackend.map "
            "against your cluster scheduler"
        )
        yield  # pragma: no cover - makes this a generator for protocol parity


#: Registry of backend factories selectable by name (CLI / spec files).
_BACKENDS: dict[str, Callable[..., ExecutorBackend]] = {
    "serial": SerialBackend,
    "process-pool": ProcessPoolBackend,
    "distributed": DistributedBackend,
}


def get_backend(name: str, **options: Any) -> ExecutorBackend:
    """Instantiate a backend by registry name.

    ``options`` are passed to the backend constructor (e.g.
    ``get_backend("process-pool", max_workers=4)``).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown executor backend {name!r} (available: {sorted(_BACKENDS)})"
        ) from None
    return factory(**options)

"""Tests for the spec-file layer and the ``python -m repro.campaign`` CLI.

The CLI entry point is exercised in-process via ``main(argv)`` (a subprocess
would pay the interpreter + numpy import cost per test); spec parsing and
scenario building are covered as plain functions.  Flights are tiny.
"""

import json

import pytest

from repro.campaign.__main__ import main
from repro.campaign.spec import (
    build_grid,
    build_runner,
    build_scenario,
    build_search,
    load_spec,
)

TINY_SCENARIO = {"name": "cli-tiny", "duration": 0.4, "record_hz": 20.0}


def write_spec(path, spec, form="json"):
    if form == "json":
        path.write_text(json.dumps(spec))
    else:
        lines = []
        for table, content in spec.items():
            lines.append(f"[{table}]")
            for key, value in content.items():
                lines.append(f"{key} = {json.dumps(value)}")
            lines.append("")
        path.write_text("\n".join(lines))
    return path


class TestSpecLoading:
    def test_json_and_toml_load_identically(self, tmp_path):
        spec = {"scenario": dict(TINY_SCENARIO), "axes": {"seed": [1, 2]}}
        from_json = load_spec(write_spec(tmp_path / "spec.json", spec))
        from_toml = load_spec(write_spec(tmp_path / "spec.toml", spec, form="toml"))
        assert from_json == from_toml

    def test_spec_needs_exactly_one_of_axes_or_adaptive(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one of"):
            load_spec(write_spec(tmp_path / "none.json", {"scenario": {}}))
        both = {
            "axes": {"seed": [1]},
            "adaptive": {"axis": "seed", "lo": 0, "hi": 9, "tolerance": 1},
        }
        with pytest.raises(ValueError, match="exactly one of"):
            load_spec(write_spec(tmp_path / "both.json", both))


class TestBuildScenario:
    def test_defaults_to_plain_scenario(self):
        scenario = build_scenario(None)
        assert scenario.name == "hover"

    def test_figure_constructor_with_arguments(self):
        scenario = build_scenario({"figure": "figure5", "attack_start": 3.0,
                                   "duration": 8.0})
        assert scenario.name == "fig5-memdos-with-memguard"
        assert scenario.duration == 8.0
        assert scenario.attacks[0].start_time == 3.0

    def test_field_overrides_apply_on_top(self):
        scenario = build_scenario({"figure": "figure5", "seed": 7,
                                   "geofence_radius": 2.0, "name": "custom"})
        assert scenario.seed == 7
        assert scenario.geofence_radius == 2.0
        assert scenario.name == "custom"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario figure"):
            build_scenario({"figure": "figure99"})

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario option"):
            build_scenario({"warp": 9})


class TestBuildPieces:
    def test_build_grid(self):
        spec = {"scenario": dict(TINY_SCENARIO),
                "axes": {"seed": [1, 2], "monitor": [True, False]}}
        grid = build_grid(spec)
        assert len(grid) == 4
        assert grid.axis_names == ("seed", "monitor")

    def test_build_search(self):
        spec = {
            "scenario": {"figure": "figure5", "duration": 6.0},
            "adaptive": {"axis": "memguard_budget", "lo": 2000, "hi": 32000,
                         "tolerance": 781, "batch": 3,
                         "predicate": "crashed"},
        }
        search = build_search(spec)
        assert search.axis == "memguard_budget"
        assert (search.lo, search.hi) == (2000.0, 32000.0)
        assert search.batch == 3
        assert search.dense_grid_size() == 40

    def test_build_search_missing_key(self):
        with pytest.raises(ValueError, match="missing 'tolerance'"):
            build_search({"adaptive": {"axis": "seed", "lo": 0, "hi": 9}})

    def test_build_search_unknown_option(self):
        with pytest.raises(ValueError, match="unknown adaptive option"):
            build_search({"adaptive": {"axis": "seed", "lo": 0, "hi": 9,
                                       "tolerance": 1, "fuzz": True}})

    def test_build_runner_policy(self, tmp_path):
        runner = build_runner({"runner": {"mode": "serial", "max_workers": 3}})
        assert runner.mode == "serial"
        assert runner.max_workers == 3
        assert runner.store is None

    def test_build_runner_backend_and_store(self, tmp_path):
        from repro.campaign import ProcessPoolBackend

        runner = build_runner({
            "runner": {"backend": "process-pool",
                       "backend_options": {"max_workers": 2},
                       "store": str(tmp_path / "cells")},
        })
        assert isinstance(runner.backend, ProcessPoolBackend)
        assert runner.backend.max_workers == 2
        assert runner.store is not None

    def test_cli_overrides_win(self, tmp_path):
        runner = build_runner(
            {"runner": {"mode": "parallel", "store": str(tmp_path / "a")}},
            store_dir=tmp_path / "b", mode="serial", max_workers=1,
        )
        assert runner.mode == "serial"
        assert runner.max_workers == 1
        assert runner.store.root == tmp_path / "b"

    def test_cli_policy_override_drops_spec_backend(self, tmp_path):
        # An explicit backend would be used unconditionally by the runner,
        # so a --serial/--max-workers override must displace it — otherwise
        # "force serial execution" would silently keep the pool.  The drop
        # is announced: discarding a spec's explicit backend silently would
        # be the same trap in the other direction.
        spec = {"runner": {"backend": "process-pool",
                           "backend_options": {"max_workers": 8}}}
        with pytest.warns(RuntimeWarning, match="discards the spec's explicit"):
            runner = build_runner(spec, mode="serial")
        assert runner.backend is None
        assert runner.mode == "serial"
        with pytest.warns(RuntimeWarning, match="discards the spec's explicit"):
            runner = build_runner(spec, max_workers=2)
        assert runner.backend is None
        assert runner.max_workers == 2

    def test_unknown_runner_option_rejected(self):
        with pytest.raises(ValueError, match="unknown runner option"):
            build_runner({"runner": {"threads": 4}})

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown executor backend"):
            build_runner({"runner": {"backend": "quantum"}})

    def test_orphan_backend_options_rejected(self):
        # backend_options without a backend name would otherwise be
        # silently discarded (unlike every other misplaced runner option).
        with pytest.raises(ValueError, match="requires a 'backend' name"):
            build_runner({"runner": {"backend_options": {"max_workers": 8}}})


class TestCliEndToEnd:
    def grid_spec(self, tmp_path, **runner):
        spec = {"scenario": dict(TINY_SCENARIO), "axes": {"seed": [1, 2]},
                "runner": {"mode": "serial", **runner}}
        return write_spec(tmp_path / "spec.json", spec)

    def test_markdown_report_by_default(self, tmp_path, capsys):
        assert main([str(self.grid_spec(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "### Campaign summary" in out
        assert "| Cell |" in out

    def test_json_format_and_csv_export(self, tmp_path, capsys):
        code = main([
            str(self.grid_spec(tmp_path)), "--format", "json",
            "--csv", str(tmp_path / "rows.csv"),
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["variants"] == 2
        header = (tmp_path / "rows.csv").read_text().splitlines()[0]
        assert header.startswith("variant,seed")

    def test_store_caches_between_invocations(self, tmp_path, capsys):
        spec = self.grid_spec(tmp_path, store=str(tmp_path / "cells"))
        assert main([str(spec)]) == 0
        capsys.readouterr()
        assert main([str(spec), "--format", "text"]) == 0
        assert "2 from cache" in capsys.readouterr().out

    def test_toml_spec_runs(self, tmp_path, capsys):
        spec = write_spec(
            tmp_path / "spec.toml",
            {"scenario": dict(TINY_SCENARIO), "axes": {"seed": [1]},
             "runner": {"mode": "serial"}},
            form="toml",
        )
        assert main([str(spec)]) == 0
        assert "Campaign summary" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        path = write_spec(tmp_path / "bad.json", {"scenario": {}})
        assert main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_adaptive_unknown_axis_exits_2(self, tmp_path, capsys):
        # The axis resolves lazily inside the search run; a typo must still
        # honour the "error: ..." + exit 2 contract, not dump a traceback.
        spec = {"scenario": dict(TINY_SCENARIO),
                "adaptive": {"axis": "memguard_bugdet", "lo": 2000,
                             "hi": 32000, "tolerance": 781},
                "runner": {"mode": "serial"}}
        path = write_spec(tmp_path / "spec.json", spec)
        assert main([str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.toml")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_variants_exit_2(self, tmp_path, capsys):
        # physics_dt > duration yields zero recorded samples: every variant
        # fails inside the flight and is captured as an error outcome.
        spec = {"scenario": {"name": "broken", "duration": 0.2,
                             "physics_dt": 0.5, "record_hz": 20.0},
                "axes": {"seed": [1]}, "runner": {"mode": "serial"}}
        path = write_spec(tmp_path / "spec.json", spec)
        assert main([str(path)]) == 2
        assert "FAILED" in capsys.readouterr().err

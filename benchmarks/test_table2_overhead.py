"""Table II — system overhead comparison (per-core CPU idle rates).

Paper values (idle rate per CPU):

=====================  =====  =====  =====  =====
Case                   CPU0   CPU1   CPU2   CPU3
=====================  =====  =====  =====  =====
No container nor VM    0.95   0.99   0.99   0.99
One VM                 0.86   0.83   0.81   0.77
One container          0.95   0.99   0.99   0.98
=====================  =====  =====  =====  =====

The claim being reproduced: running one container is nearly free (idle rates
within a point or two of native), while one QEMU VM costs 15-25 % of every
core even when the guest is idle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_overhead_table
from repro.sim import SystemSimulation

MEASUREMENT_SECONDS = 10.0

PAPER_IDLE = {
    "No container nor VM": [0.95, 0.99, 0.99, 0.99],
    "One VM": [0.86, 0.83, 0.81, 0.77],
    "One container": [0.95, 0.99, 0.99, 0.98],
}


def measure_all_cases() -> dict[str, list[float]]:
    """Measure idle rates for the three Table II configurations."""
    results: dict[str, list[float]] = {}

    native = SystemSimulation()
    results["No container nor VM"] = native.run(MEASUREMENT_SECONDS)

    vm_case = SystemSimulation()
    vm_case.add_vm()
    results["One VM"] = vm_case.run(MEASUREMENT_SECONDS)

    container_case = SystemSimulation()
    container_case.add_container()
    results["One container"] = container_case.run(MEASUREMENT_SECONDS)
    return results


def test_table2_overhead(benchmark, report):
    measured = benchmark.pedantic(measure_all_cases, rounds=1, iterations=1)

    text = format_overhead_table(measured)
    text += "\n\nPaper values:\n" + format_overhead_table(PAPER_IDLE)
    report("table2_overhead", text)

    native = np.array(measured["No container nor VM"])
    vm = np.array(measured["One VM"])
    container = np.array(measured["One container"])

    # Native and container cases are near-idle on every core.
    assert np.all(native > 0.93)
    assert np.all(container > 0.93)
    # The container costs at most ~2 points of idle rate versus native.
    assert np.all(native - container < 0.03)
    # The VM costs substantially more on every core, in the paper's band.
    assert np.all(vm < 0.92)
    assert np.mean(vm) == pytest.approx(np.mean(PAPER_IDLE["One VM"]), abs=0.06)
    # Ordering of the three cases matches the paper.
    assert np.mean(vm) < np.mean(container) <= np.mean(native) + 1e-9

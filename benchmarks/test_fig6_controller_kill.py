"""Figure 6 — the complex controller is killed mid-flight.

Paper: "The security monitor detects that the output from CCE has not been
received for some time, then kills the receiving thread and switches to the
output from the safety controller" — the drone drifts while the stale command
is applied and is then stabilised by the safety controller.
"""

from __future__ import annotations

from repro.sim import FlightScenario, run_scenario

from figure_report import render_figure

KILL_TIME = 12.0


def run_figure6():
    return run_scenario(FlightScenario.figure6(kill_time=KILL_TIME))


def test_fig6_controller_kill(benchmark, report):
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    report("fig6_controller_kill",
           render_figure(result, f"complex controller killed at t={KILL_TIME:.0f} s"))

    metrics = result.metrics
    assert not result.crashed
    # The receiving-interval rule fires shortly after the kill...
    assert result.violations
    assert result.violations[0].rule == "receiving-interval"
    assert result.switch_time is not None
    assert KILL_TIME < result.switch_time < KILL_TIME + 1.0
    # ...the drone is disturbed while the stale command is applied (the
    # magnitude of the drift depends on the frozen command, so only a weak
    # lower bound is asserted; the paper's drone drifted several metres)...
    assert metrics.max_deviation_after > 0.02
    # ...and the safety controller brings it back to the setpoint.
    assert metrics.recovered
    assert metrics.final_deviation < 0.3

"""Stable content hashing of flight scenarios.

A campaign cell is identified by *what would be simulated*: the complete
:class:`~repro.sim.scenario.FlightScenario` (mission, seed, attack
descriptors with all their parameters, the full
:class:`~repro.core.config.ContainerDroneConfig`) plus a version salt that
tracks the behaviour of the simulation stack itself.  Two scenarios with the
same key are guaranteed to fly the same flight; any change to any ingredient
— a different seed, one attack parameter, one protection threshold, or a
bumped :data:`~repro.sim.SIM_VERSION` — produces a different key.

The hash is computed over a canonical JSON rendering, not over pickles:
pickle bytes are not stable across Python versions or dataclass field
reordering, while the canonical form below is deterministic by construction
(sorted keys, explicit type tags, ``repr``-round-trip floats).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import fields, is_dataclass
from typing import Any

from ..sim import SIM_VERSION
from ..sim.scenario import FlightScenario

__all__ = ["VERSION_SALT", "cache_key", "canonical", "scenario_fingerprint"]

#: Default salt mixed into every cache key.  Derived from
#: :data:`repro.sim.SIM_VERSION`, the behavioural version of the simulation
#: stack: bumping that constant invalidates every previously stored flight.
VERSION_SALT = f"sim-v{SIM_VERSION}"


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic, JSON-serialisable structure.

    Dataclasses become tagged dictionaries (the type name participates in the
    hash, so two attack classes with identical fields do not collide), numpy
    scalars/arrays become Python scalars/nested lists, sets are sorted, and
    mappings get string keys.  Unsupported types raise ``TypeError`` rather
    than falling back to ``repr`` — an unstable rendering would silently
    produce keys that never hit.
    """
    if is_dataclass(value) and not isinstance(value, type):
        kind = type(value)
        payload: dict[str, Any] = {
            "__dataclass__": f"{kind.__module__}.{kind.__qualname__}"
        }
        for spec in fields(value):
            payload[spec.name] = canonical(getattr(value, spec.name))
        return payload
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN breaks the equal-keys-fly-equal-flights guarantee (NaN != NaN)
        # and, like the infinities, renders as a non-interoperable JSON token
        # ("NaN"/"Infinity"), so a non-finite ingredient is a caller bug.
        if not math.isfinite(value):
            raise TypeError(
                f"cannot canonicalise non-finite float {value!r} for a "
                "cache key: scenario ingredients must be finite numbers"
            )
        # repr() round-trips doubles exactly; json.dumps uses it internally.
        # IEEE negative zero compares equal to 0.0 and flies the same flight,
        # but renders as "-0.0" — normalise it or physically identical
        # scenarios hash to different keys and re-fly.
        return 0.0 if value == 0.0 else value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, (set, frozenset)):
        members = [canonical(item) for item in value]
        return {"__set__": sorted(members, key=lambda item: json.dumps(
            item, sort_keys=True, separators=(",", ":"), allow_nan=False))}
    if isinstance(value, dict):
        converted: dict[str, Any] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"cannot canonicalise mapping key {key!r}: cache keys "
                    "require string-keyed mappings"
                )
            converted[key] = canonical(item)
        return converted
    # numpy scalars and 0-d arrays unwrap to their Python value (np.int64(7)
    # must hash like 7 — axis values frequently arrive via np.arange);
    # proper arrays become tagged nested lists.
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "ndim", None) == 0:
        return canonical(value.item())
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return {"__ndarray__": canonical(tolist()),
                "dtype": str(getattr(value, "dtype", ""))}
    if callable(item):
        return canonical(item())
    raise TypeError(
        f"cannot canonicalise {type(value).__name__!r} for a cache key; "
        "scenario ingredients must be dataclasses, numbers, strings, "
        "containers or numpy values"
    )


def scenario_fingerprint(scenario: FlightScenario) -> str:
    """Canonical JSON rendering of a scenario (the pre-image of its key).

    The scenario's ``name`` is excluded: it labels reports and never
    influences the flight, and hashing it would make every grid rename (or
    a boundary probe revisiting a grid cell under a different variant name)
    re-fly physically identical flights.
    """
    if not isinstance(scenario, FlightScenario):
        raise TypeError(f"expected FlightScenario, got {type(scenario).__name__}")
    payload = canonical(scenario)
    del payload["name"]
    # allow_nan=False is a backstop: canonical() already rejects non-finite
    # floats, but a regression there must fail here rather than emit a
    # non-interoperable "NaN"/"Infinity" token into the key pre-image.
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def cache_key(scenario: FlightScenario, salt: str | None = None) -> str:
    """Content-addressed key of one flight: sha256 over (scenario, salt).

    ``salt`` defaults to :data:`VERSION_SALT`; pass an explicit value to
    maintain several independent generations of results in one store.
    """
    blob = json.dumps(
        {"salt": VERSION_SALT if salt is None else salt,
         "scenario": scenario_fingerprint(scenario)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Campaign-service acceptance: one daemon, two concurrent tenants, for real.

This is the multi-tenant ISSUE's acceptance demo end to end: one
:class:`~repro.campaign.service.CampaignService` daemon with a shared
2-worker fleet hosts **two concurrent 12-variant campaigns** submitted by
separate :class:`~repro.campaign.client.ServiceClient`s, and

* both hosted runs finish ``done`` with zero failed variants,
* each run's report is **identical** to a serial run of the same spec
  (multi-tenancy must not leak into results — not across runs, not from
  the shared fleet),
* the daemon then accepts a **third** submission without a restart and
  completes it too,
* the whole thing beats flying both campaigns serially back to back
  (informational on small machines; the daemon pipelines two tenants over
  one fleet, it cannot beat serial on a single busy core).

Flights are short (1.5 s) to keep the benchmark affordable.  Wall times,
per-tenant completion times and the concurrent throughput land in
``BENCH_service_throughput.json`` for the CI perf trajectory.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.report import format_table
from repro.campaign import CampaignRunner
from repro.campaign.client import ServiceClient
from repro.campaign.service import CampaignService
from repro.campaign.spec import build_grid

FLIGHT_DURATION = 1.5

WORKERS = 2


def tenant_spec(name: str, budgets: list[int]) -> dict:
    """One tenant's 12-variant spec (2 budgets x 2 attack starts x 3 seeds).

    The tenants sweep *different* budget sets so any cross-run contamination
    would show up as wrong numbers, not silently identical ones.
    """
    return {
        "scenario": {
            "figure": "figure5",
            "duration": FLIGHT_DURATION,
            "name": name,
        },
        "axes": {
            "memguard_budget": budgets,
            "attack_start": [0.5, 1.0],
            "seed": [301, 302, 303],
        },
    }


SPEC_A = tenant_spec("svc-tenant-a", [1500, 3000])
SPEC_B = tenant_spec("svc-tenant-b", [1000, 2500])
SPEC_C = tenant_spec("svc-tenant-c", [2000, 4000])


@pytest.fixture(scope="module")
def service_runs():
    """Serial references first (doubling as warmup), then the daemon."""
    serial = {}
    serial_wall = 0.0
    for key, spec in (("a", SPEC_A), ("b", SPEC_B)):
        start = time.monotonic()
        result = CampaignRunner(mode="serial").run(build_grid(spec))
        serial_wall += time.monotonic() - start
        serial[key] = json.loads(result.to_json())

    with CampaignService(
        workers=WORKERS, poll_interval=0.02, lease_timeout=120.0
    ) as daemon:
        client_a = ServiceClient(daemon.url)
        client_b = ServiceClient(daemon.url)
        start = time.monotonic()
        run_a = client_a.submit_spec(SPEC_A, label="tenant-a")
        run_b = client_b.submit_spec(SPEC_B, label="tenant-b")
        # Watch both tenants while they fly: with round-robin claims both
        # must show completed flights *while the other is still running* —
        # the observable signature of true interleaving (a run-A-then-run-B
        # fleet would finish tenant A before tenant B completes anything).
        overlapped = False
        deadline = start + 600.0
        while time.monotonic() < deadline:
            status_a = client_a.status(run_a)
            status_b = client_b.status(run_b)
            if (status_a["state"] == "running"
                    and status_b["state"] == "running"
                    and (status_a.get("queue") or {}).get("done", 0) > 0
                    and (status_b.get("queue") or {}).get("done", 0) > 0):
                overlapped = True
            if (status_a["state"] != "running"
                    and status_b["state"] != "running"):
                break
            time.sleep(0.1)
        wall_concurrent = time.monotonic() - start
        hosted = {
            "a": client_a.results(run_a),
            "b": client_b.results(run_b),
        }
        registry = client_a.list_runs()

        # Third tenant, same daemon, no restart.
        start = time.monotonic()
        run_c = client_a.submit_spec(SPEC_C, label="tenant-c")
        status_c = client_a.wait(run_c, timeout=600.0, poll_interval=0.1)
        wall_c = time.monotonic() - start
        hosted["c"] = client_a.results(run_c)
    serial_c = json.loads(
        CampaignRunner(mode="serial").run(build_grid(SPEC_C)).to_json()
    )
    serial["c"] = serial_c
    return {
        "serial": serial,
        "serial_wall": serial_wall,
        "hosted": hosted,
        "statuses": {"a": status_a, "b": status_b, "c": status_c},
        "walls": {"concurrent": wall_concurrent, "c": wall_c},
        "overlapped": overlapped,
        "registry": registry,
    }


def test_two_concurrent_tenants_match_serial(service_runs, report):
    hosted = service_runs["hosted"]
    serial = service_runs["serial"]
    for key in ("a", "b", "c"):
        assert service_runs["statuses"][key]["state"] == "done"
        result = hosted[key]["result"]
        assert result["variants"] == 12
        assert result["failures"] == 0
        # Bit-identical to the serial reference: per-variant rows and the
        # aggregated cells — multi-tenancy leaves no trace in the numbers.
        assert result["rows"] == serial[key]["rows"]
        assert result["cells"] == serial[key]["cells"]

    registry = service_runs["registry"]
    assert [entry["label"] for entry in registry] == ["tenant-a", "tenant-b"]
    assert all(entry["state"] == "done" for entry in registry)

    walls = service_runs["walls"]
    serial_wall = service_runs["serial_wall"]
    throughput = 24.0 / walls["concurrent"] if walls["concurrent"] else 0.0
    speedup = serial_wall / walls["concurrent"] if walls["concurrent"] else 0.0
    rows = [
        ["2x serial back to back", f"{serial_wall:.1f} s", "24"],
        ["2 concurrent hosted runs", f"{walls['concurrent']:.1f} s", "24"],
        ["3rd run, same daemon", f"{walls['c']:.1f} s", "12"],
    ]
    text = format_table(
        ["Mode", "Wall time", "Flights"],
        rows,
        title=(
            f"Campaign service: 2 concurrent 12-variant tenants on one "
            f"{WORKERS}-worker fleet, {throughput:.2f} flights/s, "
            f"{speedup:.2f}x vs serial"
        ),
    )
    report("service_throughput", text, data={
        "flights_concurrent": 24,
        "flight_duration_s": FLIGHT_DURATION,
        "workers": WORKERS,
        "serial_wall_s": round(serial_wall, 3),
        "concurrent_wall_s": round(walls["concurrent"], 3),
        "third_run_wall_s": round(walls["c"], 3),
        "throughput_flights_per_s": round(throughput, 3),
        "speedup_vs_serial": round(speedup, 3),
    })


def test_tenants_really_ran_concurrently(service_runs):
    """Both tenants were observed with completed flights while the other
    was still running — interleaved service, not run-a-then-run-b."""
    assert service_runs["overlapped"]

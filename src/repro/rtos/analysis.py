"""Fixed-priority response-time analysis.

The paper lists a hard real-time schedulability analysis of the container
drone as future work.  This module provides the classical response-time
analysis for independent periodic tasks under fixed-priority preemptive
scheduling on a single core, which the ``schedulability_analysis`` example
applies to the HCE task set (with execution times inflated by the worst-case
MemGuard-bounded memory contention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .task import TaskConfig

__all__ = ["ResponseTimeResult", "response_time_analysis", "core_utilization"]


@dataclass(frozen=True)
class ResponseTimeResult:
    """Outcome of the response-time analysis for one task."""

    task: str
    response_time: float
    deadline: float
    schedulable: bool


def core_utilization(tasks: list[TaskConfig]) -> float:
    """Total nominal utilisation of a task set."""
    return sum(task.utilization for task in tasks)


def response_time_analysis(
    tasks: list[TaskConfig],
    execution_inflation: float = 1.0,
    max_iterations: int = 1000,
) -> list[ResponseTimeResult]:
    """Classical response-time analysis for a single-core fixed-priority set.

    Parameters
    ----------
    tasks:
        Task set sharing one core.  Deadlines are implicit (equal to periods).
    execution_inflation:
        Multiplier applied to every execution time, used to model worst-case
        memory contention (e.g. the MemGuard-bounded stretch factor).
    max_iterations:
        Safety bound on the fixed-point iteration.

    Returns
    -------
    One :class:`ResponseTimeResult` per task.  A task whose iteration exceeds
    its period (or does not converge) is reported unschedulable with an
    infinite response time.
    """
    if execution_inflation < 1.0:
        raise ValueError("execution_inflation must be at least 1.0")
    ordered = sorted(tasks, key=lambda task: -task.priority)
    results: list[ResponseTimeResult] = []
    for index, task in enumerate(ordered):
        cost = task.execution_time * execution_inflation
        higher = ordered[:index]
        response = cost
        converged = False
        for _ in range(max_iterations):
            interference = sum(
                math.ceil(response / hp.period) * hp.execution_time * execution_inflation
                for hp in higher
            )
            next_response = cost + interference
            if abs(next_response - response) < 1e-12:
                response = next_response
                converged = True
                break
            if next_response > task.period:
                response = next_response
                break
            response = next_response
        schedulable = converged and response <= task.period + 1e-12
        results.append(
            ResponseTimeResult(
                task=task.name,
                response_time=response if schedulable else float("inf"),
                deadline=task.period,
                schedulable=schedulable,
            )
        )
    return results
